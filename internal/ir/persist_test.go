package ir

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"iqn/internal/dataset"
)

func TestSnapshotRoundTrip(t *testing.T) {
	corpus := dataset.Generate(dataset.CorpusConfig{NumDocs: 300, Seed: 9})
	x := NewIndex()
	x.SetScoring(ScoringBM25)
	for _, d := range corpus.Docs {
		x.AddDocument(d.ID, d.Terms)
	}
	x.Finalize()

	var buf bytes.Buffer
	if err := x.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != x.NumDocs() || got.TermSpaceSize() != x.TermSpaceSize() {
		t.Fatalf("restored shape %d/%d, want %d/%d",
			got.NumDocs(), got.TermSpaceSize(), x.NumDocs(), x.TermSpaceSize())
	}
	if got.Scoring() != ScoringBM25 {
		t.Fatalf("scoring lost: %v", got.Scoring())
	}
	// Queries give identical rankings.
	q := dataset.GenerateQueries(corpus, dataset.QueryConfig{Count: 3, Seed: 9})
	for _, query := range q {
		want := x.Search(query.Terms, 20, Disjunctive)
		have := got.Search(query.Terms, 20, Disjunctive)
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("query %v results differ after restore", query.Terms)
		}
	}
	// Restored indexes are immutable like any finalized index.
	mustPanic(t, func() { got.AddDocument(999, []string{"late"}) })
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "index.snap")
	x := NewIndex()
	x.AddText(1, "forest fire safety")
	x.AddText(2, "pest control")
	x.Finalize()
	if err := x.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// No temp file remains.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.DocFreq("forest") != 1 || got.NumDocs() != 2 {
		t.Fatalf("restored index wrong: df=%d docs=%d", got.DocFreq("forest"), got.NumDocs())
	}
}

func TestLoadFileErrors(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
	// Garbage too short for any trailer fails cleanly.
	path := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("garbage load error = %v", err)
	}
	// Garbage long enough to be trailer-sized but without the magic is
	// reported as pre-v2 or truncated.
	if err := os.WriteFile(path, []byte(strings.Repeat("x", 100)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil || !strings.Contains(err.Error(), "checksum trailer") {
		t.Fatalf("trailerless load error = %v", err)
	}
}

func TestChecksumDetectsTruncationAndCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "index.snap")
	x := NewIndex()
	corpus := dataset.Generate(dataset.CorpusConfig{NumDocs: 120, Seed: 4})
	for _, d := range corpus.Docs {
		x.AddDocument(d.ID, d.Terms)
	}
	x.Finalize()
	if err := x.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("pristine snapshot failed to load: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncation: drop bytes from the middle of the payload (the trailer
	// magic survives, so only the length/CRC checks can catch it).
	cut := append(append([]byte(nil), data[:len(data)/2]...), data[len(data)/2+8:]...)
	if err := os.WriteFile(path, cut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated load error = %v", err)
	}
	// Corruption: flip one payload byte; length matches, CRC must not.
	flip := append([]byte(nil), data...)
	flip[len(flip)/3] ^= 0xff
	if err := os.WriteFile(path, flip, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupt load error = %v", err)
	}
}

func TestOldSnapshotVersionRejected(t *testing.T) {
	// A version-1 stream decodes but is refused with a clear error.
	var buf bytes.Buffer
	x := NewIndex()
	x.AddText(1, "forest fire")
	x.Finalize()
	if err := x.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Re-encode with the old version number.
	old := indexSnapshot{Version: 1, Postings: x.postings, Docs: []uint64{1}}
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(old); err != nil {
		t.Fatal(err)
	}
	_, err := ReadSnapshot(&buf)
	if err == nil || !strings.Contains(err.Error(), "version 1 unsupported") {
		t.Fatalf("old version error = %v", err)
	}
}

func TestLoadFileAutoDetectsDiskIndex(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "index.iqdx")
	corpus := dataset.Generate(dataset.CorpusConfig{NumDocs: 200, Seed: 11})
	x := NewIndex()
	for _, d := range corpus.Docs {
		x.AddDocument(d.ID, d.Terms)
	}
	x.Finalize()
	if err := WriteDiskIndex(x, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile on disk-index format: %v", err)
	}
	if got.NumDocs() != x.NumDocs() || got.TermSpaceSize() != x.TermSpaceSize() {
		t.Fatalf("materialized shape %d/%d, want %d/%d",
			got.NumDocs(), got.TermSpaceSize(), x.NumDocs(), x.TermSpaceSize())
	}
	q := dataset.GenerateQueries(corpus, dataset.QueryConfig{Count: 3, Seed: 11})
	for _, query := range q {
		want := x.Search(query.Terms, 20, Disjunctive)
		have := got.Search(query.Terms, 20, Disjunctive)
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("query %v results differ after materialize", query.Terms)
		}
	}
}

func TestWriteToRequiresFinalized(t *testing.T) {
	x := NewIndex()
	x.AddText(1, "a b")
	mustPanic(t, func() { _ = x.WriteSnapshot(&bytes.Buffer{}) })
}
