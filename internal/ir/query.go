package ir

import (
	"container/heap"
	"sort"
)

// Result is one ranked query hit.
type Result struct {
	// DocID is the global document identifier.
	DocID uint64
	// Score is the aggregated query score (sum of per-term scores).
	Score float64
}

// Mode selects the query execution model of Section 6.1.
type Mode int

const (
	// Disjunctive matches documents containing any query term.
	Disjunctive Mode = iota
	// Conjunctive matches only documents containing all query terms.
	Conjunctive
)

// String names the mode.
func (m Mode) String() string {
	if m == Conjunctive {
		return "conjunctive"
	}
	return "disjunctive"
}

// resultHeap is a min-heap over scores, used to retain the top k results.
type resultHeap []Result

func (h resultHeap) Len() int { return len(h) }
func (h resultHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].DocID > h[j].DocID
}
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Search executes a multi-keyword query against the local index and
// returns the top k results by aggregated score, descending. k ≤ 0 means
// unlimited. Duplicate query terms are collapsed.
func (x *Index) Search(terms []string, k int, mode Mode) []Result {
	x.mustFinal()
	return searchPostings(func(t string) []Posting { return x.postings[t] }, terms, k, mode)
}

// searchPostings is the query execution core shared by the in-memory
// index and the on-disk reader: given a postings source, it accumulates
// per-document scores over the (de-duplicated) query terms and returns
// the top k. Both implementations hand postings lists in identical
// order, so accumulation — and therefore every returned score bit — is
// identical between them.
func searchPostings(postings func(term string) []Posting, terms []string, k int, mode Mode) []Result {
	uniq := make([]string, 0, len(terms))
	seen := make(map[string]struct{}, len(terms))
	for _, t := range terms {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		uniq = append(uniq, t)
	}
	// Accumulate per-document scores and term hit counts.
	scores := make(map[uint64]float64)
	hits := make(map[uint64]int)
	for _, t := range uniq {
		for _, p := range postings(t) {
			scores[p.DocID] += p.Score
			hits[p.DocID]++
		}
	}
	h := make(resultHeap, 0, k+1)
	heap.Init(&h)
	push := func(r Result) {
		if k <= 0 {
			h = append(h, r)
			return
		}
		heap.Push(&h, r)
		if len(h) > k {
			heap.Pop(&h)
		}
	}
	for d, s := range scores {
		if mode == Conjunctive && hits[d] != len(uniq) {
			continue
		}
		push(Result{DocID: d, Score: s})
	}
	out := []Result(h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].DocID < out[j].DocID
	})
	return out
}

// ResultIDs projects results to their document IDs, preserving order.
func ResultIDs(rs []Result) []uint64 {
	ids := make([]uint64, len(rs))
	for i, r := range rs {
		ids[i] = r.DocID
	}
	return ids
}
