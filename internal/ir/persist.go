package ir

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// This file implements index snapshots, so a peer can restart without
// re-indexing its crawl: WriteSnapshot/ReadSnapshot stream a finalized
// index as a gob-encoded snapshot, and SaveFile/LoadFile wrap them with
// atomic file handling (write to a temp file, then rename) plus a
// checksum trailer — a truncated or bit-flipped snapshot fails loudly
// at load instead of silently feeding a corrupt index into queries.
// LoadFile also auto-detects the on-disk index format written by the
// external-memory build pipeline and materializes it.

// snapshotVersion guards the snapshot layout. Version 2 added the
// checksum trailer; version-1 files (pre-trailer) are rejected with a
// clear error — re-index or re-save to upgrade.
const snapshotVersion = 2

// snapTrailerMagic terminates a checksummed snapshot file. The trailer
// is: uint32 crc32c(payload) | uint64 len(payload) | 8-byte magic.
const snapTrailerMagic = "IQSNAP\x00\x02"

// snapTrailerLen is the byte length of the checksum trailer.
const snapTrailerLen = 4 + 8 + 8

// indexSnapshot is the serialized form of a finalized index.
type indexSnapshot struct {
	Version  int
	Scoring  Scoring
	Postings map[string][]Posting
	DocLen   map[uint64]int
	Docs     []uint64
}

// WriteSnapshot streams a snapshot of a finalized index (named to avoid
// colliding with io.WriterTo's signature — gob writes directly and byte
// counts are not tracked). Panics if the index is not finalized. The
// stream carries no checksum; SaveFile adds the trailer.
func (x *Index) WriteSnapshot(w io.Writer) error {
	x.mustFinal()
	snap := indexSnapshot{
		Version:  snapshotVersion,
		Scoring:  x.scoring,
		Postings: x.postings,
		DocLen:   x.docLen,
		Docs:     make([]uint64, 0, len(x.docs)),
	}
	for d := range x.docs {
		snap.Docs = append(snap.Docs, d)
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("ir: encode snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot reconstructs a finalized index from a snapshot stream.
func ReadSnapshot(r io.Reader) (*Index, error) {
	var snap indexSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("ir: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("ir: snapshot version %d unsupported (current %d): re-index and save again",
			snap.Version, snapshotVersion)
	}
	x := &Index{
		postings:  snap.Postings,
		docLen:    snap.DocLen,
		docs:      make(map[uint64]struct{}, len(snap.Docs)),
		scoring:   snap.Scoring,
		finalized: true,
	}
	if x.postings == nil {
		x.postings = map[string][]Posting{}
	}
	if x.docLen == nil {
		x.docLen = map[uint64]int{}
	}
	for _, d := range snap.Docs {
		x.docs[d] = struct{}{}
	}
	return x, nil
}

// SaveFile writes the index snapshot atomically: to path+".tmp" first,
// with a checksum trailer appended, fsynced, then renamed over path.
func (x *Index) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("ir: save: %w", err)
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	bw := bufio.NewWriter(f)
	cw := newCRCWriter(bw)
	if err := x.WriteSnapshot(cw); err != nil {
		return fail(err)
	}
	var trailer [snapTrailerLen]byte
	binary.BigEndian.PutUint32(trailer[0:], cw.crc.Sum32())
	binary.BigEndian.PutUint64(trailer[4:], uint64(cw.n))
	copy(trailer[12:], snapTrailerMagic)
	if _, err := bw.Write(trailer[:]); err != nil {
		return fail(fmt.Errorf("ir: save: %w", err))
	}
	if err := bw.Flush(); err != nil {
		return fail(fmt.Errorf("ir: save: %w", err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("ir: save: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ir: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ir: save: %w", err)
	}
	return nil
}

// LoadFile reads an index from disk. It accepts either format:
//
//   - a gob snapshot written by SaveFile — the checksum trailer is
//     verified before decoding, so truncation and corruption fail with
//     a clear error instead of a half-decoded index;
//   - an on-disk index written by DiskWriter/buildix (auto-detected by
//     magic), which is materialized into memory. Callers that want the
//     out-of-core reader should use OpenDisk instead.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ir: load: %w", err)
	}
	defer f.Close()

	var magic [len(diskMagic)]byte
	if n, _ := f.ReadAt(magic[:], 0); n == len(diskMagic) && string(magic[:]) == diskMagic {
		d, err := OpenDisk(path)
		if err != nil {
			return nil, err
		}
		defer d.Close()
		return d.Materialize(), nil
	}

	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("ir: load: %w", err)
	}
	size := st.Size()
	if size < snapTrailerLen {
		return nil, fmt.Errorf("ir: load %s: file too short for a checksummed snapshot (%d bytes): truncated, or a pre-v2 snapshot — re-index and save again", path, size)
	}
	var trailer [snapTrailerLen]byte
	if _, err := f.ReadAt(trailer[:], size-snapTrailerLen); err != nil {
		return nil, fmt.Errorf("ir: load %s: read trailer: %w", path, err)
	}
	if string(trailer[12:]) != snapTrailerMagic {
		return nil, fmt.Errorf("ir: load %s: missing checksum trailer: snapshot is truncated or predates v2 — re-index and save again", path)
	}
	wantCRC := binary.BigEndian.Uint32(trailer[0:])
	wantLen := binary.BigEndian.Uint64(trailer[4:])
	payload := size - snapTrailerLen
	if uint64(payload) != wantLen {
		return nil, fmt.Errorf("ir: load %s: snapshot truncated: trailer records %d payload bytes, file has %d", path, wantLen, payload)
	}
	crc := crc32.New(castagnoli)
	if _, err := io.Copy(crc, io.NewSectionReader(f, 0, payload)); err != nil {
		return nil, fmt.Errorf("ir: load %s: checksum read: %w", path, err)
	}
	if crc.Sum32() != wantCRC {
		return nil, fmt.Errorf("ir: load %s: checksum mismatch: snapshot is corrupt", path)
	}
	return ReadSnapshot(bufio.NewReader(io.NewSectionReader(f, 0, payload)))
}
