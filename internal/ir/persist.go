package ir

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// This file implements index snapshots, so a peer can restart without
// re-indexing its crawl: WriteTo/ReadFrom stream a finalized index as a
// gob-encoded snapshot, and SaveFile/LoadFile wrap them with atomic file
// handling (write to a temp file, then rename).

// snapshotVersion guards the snapshot layout.
const snapshotVersion = 1

// indexSnapshot is the serialized form of a finalized index.
type indexSnapshot struct {
	Version  int
	Scoring  Scoring
	Postings map[string][]Posting
	DocLen   map[uint64]int
	Docs     []uint64
}

// WriteSnapshot streams a snapshot of a finalized index (named to avoid
// colliding with io.WriterTo's signature — gob writes directly and byte
// counts are not tracked). Panics if the index is not finalized.
func (x *Index) WriteSnapshot(w io.Writer) error {
	x.mustFinal()
	snap := indexSnapshot{
		Version:  snapshotVersion,
		Scoring:  x.scoring,
		Postings: x.postings,
		DocLen:   x.docLen,
		Docs:     make([]uint64, 0, len(x.docs)),
	}
	for d := range x.docs {
		snap.Docs = append(snap.Docs, d)
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("ir: encode snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot reconstructs a finalized index from a snapshot stream.
func ReadSnapshot(r io.Reader) (*Index, error) {
	var snap indexSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("ir: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("ir: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	x := &Index{
		postings:  snap.Postings,
		docLen:    snap.DocLen,
		docs:      make(map[uint64]struct{}, len(snap.Docs)),
		scoring:   snap.Scoring,
		finalized: true,
	}
	if x.postings == nil {
		x.postings = map[string][]Posting{}
	}
	if x.docLen == nil {
		x.docLen = map[uint64]int{}
	}
	for _, d := range snap.Docs {
		x.docs[d] = struct{}{}
	}
	return x, nil
}

// SaveFile writes the index snapshot atomically: to path+".tmp" first,
// fsynced, then renamed over path.
func (x *Index) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("ir: save: %w", err)
	}
	w := bufio.NewWriter(f)
	if err := x.WriteSnapshot(w); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ir: save: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ir: save: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ir: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ir: save: %w", err)
	}
	return nil
}

// LoadFile reads a snapshot written by SaveFile.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ir: load: %w", err)
	}
	defer f.Close()
	return ReadSnapshot(bufio.NewReader(f))
}
