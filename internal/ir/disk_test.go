package ir

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"iqn/internal/dataset"
)

// buildMem indexes a seeded corpus in memory.
func buildMem(t *testing.T, docs int, seed int64, scoring Scoring) (*Index, *dataset.Corpus) {
	t.Helper()
	corpus := dataset.Generate(dataset.CorpusConfig{NumDocs: docs, Seed: seed})
	x := NewIndex()
	x.SetScoring(scoring)
	for _, d := range corpus.Docs {
		x.AddDocument(d.ID, d.Terms)
	}
	x.Finalize()
	return x, corpus
}

// TestDiskIndexParity writes an in-memory index in the on-disk format
// and asserts every Searcher method — including exact score bits —
// matches between the two implementations, for every scoring model.
func TestDiskIndexParity(t *testing.T) {
	for _, scoring := range []Scoring{ScoringTFIDF, ScoringBM25, ScoringLM} {
		t.Run(scoring.String(), func(t *testing.T) {
			mem, corpus := buildMem(t, 400, 7, scoring)
			path := filepath.Join(t.TempDir(), "index.iqdx")
			if err := WriteDiskIndex(mem, path); err != nil {
				t.Fatal(err)
			}
			disk, err := OpenDisk(path)
			if err != nil {
				t.Fatal(err)
			}
			defer disk.Close()

			if disk.NumDocs() != mem.NumDocs() {
				t.Fatalf("NumDocs %d, want %d", disk.NumDocs(), mem.NumDocs())
			}
			if disk.TermSpaceSize() != mem.TermSpaceSize() {
				t.Fatalf("TermSpaceSize %d, want %d", disk.TermSpaceSize(), mem.TermSpaceSize())
			}
			if disk.MaxDocFreq() != mem.MaxDocFreq() {
				t.Fatalf("MaxDocFreq %d, want %d", disk.MaxDocFreq(), mem.MaxDocFreq())
			}
			if disk.Scoring() != scoring {
				t.Fatalf("Scoring %v, want %v", disk.Scoring(), scoring)
			}
			memTerms := mem.Terms()
			sort.Strings(memTerms)
			if !reflect.DeepEqual(disk.Terms(), memTerms) {
				t.Fatalf("term sets differ: %d vs %d", len(disk.Terms()), len(memTerms))
			}
			for _, term := range memTerms {
				if !reflect.DeepEqual(disk.Postings(term), mem.Postings(term)) {
					t.Fatalf("postings for %q differ", term)
				}
				if disk.DocFreq(term) != mem.DocFreq(term) {
					t.Fatalf("df for %q differs", term)
				}
				if disk.MaxScore(term) != mem.MaxScore(term) {
					t.Fatalf("MaxScore for %q: %v vs %v", term, disk.MaxScore(term), mem.MaxScore(term))
				}
				if disk.AvgScore(term) != mem.AvgScore(term) {
					t.Fatalf("AvgScore for %q: exact bits differ (%x vs %x)", term,
						math.Float64bits(disk.AvgScore(term)), math.Float64bits(mem.AvgScore(term)))
				}
				if !reflect.DeepEqual(disk.DocIDs(term), mem.DocIDs(term)) {
					t.Fatalf("DocIDs for %q differ", term)
				}
			}
			// Absent terms behave identically.
			if disk.Postings("nosuchterm") != nil || disk.DocFreq("nosuchterm") != 0 ||
				disk.MaxScore("nosuchterm") != 0 || disk.AvgScore("nosuchterm") != 0 ||
				disk.DocIDs("nosuchterm") != nil {
				t.Fatal("absent term not empty on disk reader")
			}
			// Queries are entry-for-entry identical, conjunctive and
			// disjunctive, across k.
			queries := dataset.GenerateQueries(corpus, dataset.QueryConfig{Count: 6, Seed: 7})
			for _, q := range queries {
				for _, mode := range []Mode{Disjunctive, Conjunctive} {
					for _, k := range []int{1, 10, 0} {
						want := mem.Search(q.Terms, k, mode)
						have := disk.Search(q.Terms, k, mode)
						if !reflect.DeepEqual(want, have) {
							t.Fatalf("query %v (k=%d, %v) differs", q.Terms, k, mode)
						}
					}
				}
			}
		})
	}
}

func TestDiskIndexDetectsCorruption(t *testing.T) {
	mem, _ := buildMem(t, 150, 3, ScoringTFIDF)
	path := filepath.Join(t.TempDir(), "index.iqdx")
	if err := WriteDiskIndex(mem, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the postings area.
	flip := append([]byte(nil), data...)
	flip[len(flip)/4] ^= 0x40
	if err := os.WriteFile(path, flip, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(path); err == nil {
		t.Fatal("corrupt disk index opened without error")
	}
	// Truncation is caught too.
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(path); err == nil {
		t.Fatal("truncated disk index opened without error")
	}
}

func TestDiskIndexSaveFileCopies(t *testing.T) {
	mem, _ := buildMem(t, 100, 5, ScoringBM25)
	dir := t.TempDir()
	path := filepath.Join(dir, "index.iqdx")
	if err := WriteDiskIndex(mem, path); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	copyPath := filepath.Join(dir, "copy.iqdx")
	if err := disk.SaveFile(copyPath); err != nil {
		t.Fatal(err)
	}
	copied, err := OpenDisk(copyPath)
	if err != nil {
		t.Fatalf("copied index does not open: %v", err)
	}
	defer copied.Close()
	if copied.NumDocs() != disk.NumDocs() || copied.TermSpaceSize() != disk.TermSpaceSize() {
		t.Fatal("copied index shape differs")
	}
}

func TestSynopsisSideFileRoundTrip(t *testing.T) {
	mem, _ := buildMem(t, 120, 9, ScoringTFIDF)
	dir := t.TempDir()
	path := filepath.Join(dir, "index.iqdx")
	if err := WriteDiskIndex(mem, path); err != nil {
		t.Fatal(err)
	}
	terms := mem.Terms()
	sort.Strings(terms)
	sw, err := NewSynopsisWriter(path+".syn", 1, 2048, 42)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for i, term := range terms {
		data := []byte{byte(i), byte(i >> 8), 0xab}
		want[term] = data
		if err := sw.AddTerm(term, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	kind, bits, seed, ok := disk.SynopsisScheme()
	if !ok || kind != 1 || bits != 2048 || seed != 42 {
		t.Fatalf("scheme = %d/%d/%d/%v", kind, bits, seed, ok)
	}
	for term, data := range want {
		got, ok := disk.PrebuiltSynopsis(term)
		if !ok || !reflect.DeepEqual(got, data) {
			t.Fatalf("synopsis for %q = %v/%v, want %v", term, got, ok, data)
		}
	}
	if _, ok := disk.PrebuiltSynopsis("absent"); ok {
		t.Fatal("absent term has a synopsis")
	}
	// Out-of-order writers fail.
	sw2, err := NewSynopsisWriter(filepath.Join(dir, "bad.syn"), 1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = sw2.AddTerm("zz", nil)
	if err := sw2.AddTerm("aa", nil); err == nil {
		t.Fatal("out-of-order synopsis term accepted")
	}
	sw2.Close()
}

func TestDiskWriterRejectsOutOfOrderTerms(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.iqdx")
	w, err := NewDiskWriter(path, ScoringTFIDF)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddTerm("zebra", []Posting{{DocID: 1, Score: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddTerm("apple", []Posting{{DocID: 2, Score: 1}}); err == nil {
		t.Fatal("out-of-order term accepted")
	}
	w.Close()
}

func TestDiskIndexEmptyCorpus(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.iqdx")
	w, err := NewDiskWriter(path, ScoringTFIDF)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	if disk.NumDocs() != 0 || disk.TermSpaceSize() != 0 || disk.MaxDocFreq() != 0 {
		t.Fatal("empty index not empty")
	}
	if got := disk.Search([]string{"any"}, 5, Disjunctive); len(got) != 0 {
		t.Fatalf("empty index returned results: %v", got)
	}
}

// TestDiskIndexAccessors covers the small introspection surface: Path,
// AllDocIDs (sorted, matches the source), and format auto-detection on
// disk indexes, gob snapshots, and garbage.
func TestDiskIndexAccessors(t *testing.T) {
	mem, corpus := buildMem(t, 80, 9, ScoringTFIDF)
	dir := t.TempDir()
	path := filepath.Join(dir, "index.iqdx")
	if err := WriteDiskIndex(mem, path); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	if disk.Path() != path {
		t.Fatalf("Path() = %q, want %q", disk.Path(), path)
	}
	ids := disk.AllDocIDs()
	if len(ids) != len(corpus.Docs) {
		t.Fatalf("AllDocIDs: %d ids, want %d", len(ids), len(corpus.Docs))
	}
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Fatal("AllDocIDs not sorted")
	}

	if !IsDiskIndex(path) {
		t.Fatal("disk index not detected")
	}
	gobPath := filepath.Join(dir, "snap.gob")
	if err := mem.SaveFile(gobPath); err != nil {
		t.Fatal(err)
	}
	if IsDiskIndex(gobPath) {
		t.Fatal("gob snapshot misdetected as disk index")
	}
	if IsDiskIndex(filepath.Join(dir, "missing")) {
		t.Fatal("missing file misdetected as disk index")
	}
	tiny := filepath.Join(dir, "tiny")
	if err := os.WriteFile(tiny, []byte{1, 2}, 0o644); err != nil {
		t.Fatal(err)
	}
	if IsDiskIndex(tiny) {
		t.Fatal("two-byte file misdetected as disk index")
	}
}

// TestDiskWriterReportsBytes checks BytesWritten tracks the growing
// output file.
func TestDiskWriterReportsBytes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.iqdx")
	w, err := NewDiskWriter(path, ScoringTFIDF)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddTerm("alpha", []Posting{{DocID: 1, Score: 1}}); err != nil {
		t.Fatal(err)
	}
	mid := w.BytesWritten()
	if mid <= 0 {
		t.Fatalf("BytesWritten after a term = %d, want > 0", mid)
	}
	w.AddDocs([]uint64{1})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() <= mid {
		t.Fatalf("final file %d bytes, not larger than mid-write %d", st.Size(), mid)
	}
}
