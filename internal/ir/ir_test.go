package ir

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"iqn/internal/dataset"
)

func TestTokenize(t *testing.T) {
	cases := map[string][]string{
		"Forest FIRE":              {"forest", "fire"},
		"pest-safety  control!":    {"pest", "safety", "control"},
		"the cat and the hat":      {"cat", "hat"},
		"a I x":                    nil,
		"MP3 files by Theodorakis": {"mp3", "files", "theodorakis"},
		"":                         nil,
		"öffnen die tür":           {"öffnen", "die", "tür"},
	}
	for in, want := range cases {
		if got := Tokenize(in); !reflect.DeepEqual(got, want) {
			t.Errorf("Tokenize(%q) = %v, want %v", in, got, want)
		}
	}
}

func buildSmall(t *testing.T) *Index {
	t.Helper()
	x := NewIndex()
	x.AddText(1, "forest fire burns forest")
	x.AddText(2, "forest service")
	x.AddText(3, "fire safety control")
	x.AddText(4, "pest control safety control")
	x.Finalize()
	return x
}

func TestIndexStats(t *testing.T) {
	x := buildSmall(t)
	if x.NumDocs() != 4 {
		t.Fatalf("NumDocs = %d, want 4", x.NumDocs())
	}
	if x.DocFreq("forest") != 2 || x.DocFreq("control") != 2 || x.DocFreq("missing") != 0 {
		t.Fatalf("doc freqs wrong: forest=%d control=%d", x.DocFreq("forest"), x.DocFreq("control"))
	}
	if x.MaxDocFreq() != 2 {
		t.Fatalf("MaxDocFreq = %d, want 2", x.MaxDocFreq())
	}
	// Vocabulary: forest fire burns service safety control pest = 7.
	if x.TermSpaceSize() != 7 {
		t.Fatalf("TermSpaceSize = %d, want 7", x.TermSpaceSize())
	}
	if len(x.Terms()) != 7 {
		t.Fatalf("Terms() has %d entries", len(x.Terms()))
	}
}

func TestPostingsSortedByScore(t *testing.T) {
	x := buildSmall(t)
	for _, term := range x.Terms() {
		list := x.Postings(term)
		for i := 1; i < len(list); i++ {
			if list[i].Score > list[i-1].Score {
				t.Fatalf("postings for %q not score-sorted", term)
			}
		}
	}
	// Doc 1 has tf(forest)=2 and must outrank doc 2 with tf=1.
	forest := x.Postings("forest")
	if forest[0].DocID != 1 {
		t.Fatalf("top forest doc = %d, want 1 (higher tf)", forest[0].DocID)
	}
	if x.MaxScore("forest") != forest[0].Score {
		t.Fatalf("MaxScore mismatch")
	}
	if x.MaxScore("missing") != 0 || x.AvgScore("missing") != 0 {
		t.Fatal("absent term must score 0")
	}
	avg := x.AvgScore("forest")
	if avg <= 0 || avg > x.MaxScore("forest") {
		t.Fatalf("AvgScore = %v out of range", avg)
	}
}

func TestDocIDs(t *testing.T) {
	x := buildSmall(t)
	ids := x.DocIDs("control")
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if !reflect.DeepEqual(ids, []uint64{3, 4}) {
		t.Fatalf("DocIDs(control) = %v, want [3 4]", ids)
	}
}

func TestIdfOrdering(t *testing.T) {
	// Rarer terms must carry higher idf: "pest" (df 1) beats "control"
	// (df 2) for the same tf.
	x := buildSmall(t)
	pest := x.Postings("pest")[0].Score
	// control appears twice in doc 4, so compare idf directly via a tf-1 doc.
	controlDoc3 := x.Postings("control")
	var c3 float64
	for _, p := range controlDoc3 {
		if p.DocID == 3 {
			c3 = p.Score
		}
	}
	if pest <= c3 {
		t.Fatalf("idf ordering violated: pest %v <= control %v", pest, c3)
	}
}

func TestSearchDisjunctive(t *testing.T) {
	x := buildSmall(t)
	rs := x.Search([]string{"forest", "fire"}, 10, Disjunctive)
	if len(rs) != 3 {
		t.Fatalf("%d results, want 3 (docs 1,2,3)", len(rs))
	}
	if rs[0].DocID != 1 {
		t.Fatalf("top doc = %d, want 1 (matches both terms)", rs[0].DocID)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Score > rs[i-1].Score {
			t.Fatal("results not score-sorted")
		}
	}
}

func TestSearchConjunctive(t *testing.T) {
	x := buildSmall(t)
	rs := x.Search([]string{"forest", "fire"}, 10, Conjunctive)
	if len(rs) != 1 || rs[0].DocID != 1 {
		t.Fatalf("conjunctive results = %v, want only doc 1", rs)
	}
	rs = x.Search([]string{"safety", "control"}, 10, Conjunctive)
	if len(rs) != 2 {
		t.Fatalf("conjunctive safety∧control = %d results, want 2", len(rs))
	}
	// A term nobody has kills every conjunctive result.
	if rs := x.Search([]string{"forest", "zzz"}, 10, Conjunctive); len(rs) != 0 {
		t.Fatalf("conjunctive with absent term returned %v", rs)
	}
}

func TestSearchTopK(t *testing.T) {
	x := buildSmall(t)
	rs := x.Search([]string{"forest", "fire", "control", "safety"}, 2, Disjunctive)
	if len(rs) != 2 {
		t.Fatalf("top-2 returned %d results", len(rs))
	}
	all := x.Search([]string{"forest", "fire", "control", "safety"}, 0, Disjunctive)
	if len(all) != 4 {
		t.Fatalf("unlimited returned %d results, want 4", len(all))
	}
	// Top-2 must equal the head of the full ranking.
	if rs[0] != all[0] || rs[1] != all[1] {
		t.Fatalf("top-k %v disagrees with full ranking head %v", rs, all[:2])
	}
	// Duplicate query terms collapse.
	dup := x.Search([]string{"forest", "forest"}, 0, Disjunctive)
	single := x.Search([]string{"forest"}, 0, Disjunctive)
	if !reflect.DeepEqual(dup, single) {
		t.Fatalf("duplicate terms changed scores: %v vs %v", dup, single)
	}
}

func TestSearchMissingTermOnly(t *testing.T) {
	x := buildSmall(t)
	if rs := x.Search([]string{"zzz"}, 5, Disjunctive); len(rs) != 0 {
		t.Fatalf("absent term returned %v", rs)
	}
	if rs := x.Search(nil, 5, Disjunctive); len(rs) != 0 {
		t.Fatalf("empty query returned %v", rs)
	}
}

func TestFinalizeGuards(t *testing.T) {
	x := NewIndex()
	x.AddText(1, "hello world")
	mustPanic(t, func() { x.Search([]string{"hello"}, 1, Disjunctive) })
	mustPanic(t, func() { x.Postings("hello") })
	x.Finalize()
	x.Finalize() // idempotent
	mustPanic(t, func() { x.AddText(2, "late") })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestMerge(t *testing.T) {
	a := []Result{{1, 5}, {2, 4}, {3, 3}}
	b := []Result{{2, 6}, {4, 2}}
	m := Merge([][]Result{a, b}, 0)
	want := []Result{{2, 6}, {1, 5}, {3, 3}, {4, 2}}
	if !reflect.DeepEqual(m, want) {
		t.Fatalf("Merge = %v, want %v", m, want)
	}
	m2 := Merge([][]Result{a, b}, 2)
	if !reflect.DeepEqual(m2, want[:2]) {
		t.Fatalf("Merge top-2 = %v, want %v", m2, want[:2])
	}
	if got := Merge(nil, 5); len(got) != 0 {
		t.Fatalf("Merge(nil) = %v", got)
	}
}

func TestRelativeRecall(t *testing.T) {
	ref := []Result{{1, 9}, {2, 8}, {3, 7}, {4, 6}}
	cases := []struct {
		got  []Result
		want float64
	}{
		{nil, 0},
		{[]Result{{1, 1}}, 0.25},
		{[]Result{{1, 1}, {3, 1}}, 0.5},
		{[]Result{{1, 1}, {2, 1}, {3, 1}, {4, 1}, {99, 1}}, 1},
	}
	for _, c := range cases {
		if got := RelativeRecall(c.got, ref); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RelativeRecall(%v) = %v, want %v", c.got, got, c.want)
		}
	}
	if got := RelativeRecall(nil, nil); got != 1 {
		t.Fatalf("recall against empty reference = %v, want 1", got)
	}
}

func TestPartitionedRecallIsComplete(t *testing.T) {
	// Indexing a corpus on one peer must reproduce the centralized
	// ranking exactly: recall 1 at full k.
	corpus := dataset.Generate(dataset.CorpusConfig{NumDocs: 300, Seed: 5})
	central := NewIndex()
	for _, d := range corpus.Docs {
		central.AddDocument(d.ID, d.Terms)
	}
	central.Finalize()
	q := dataset.GenerateQueries(corpus, dataset.QueryConfig{Count: 3, Seed: 5})
	for _, query := range q {
		ref := central.Search(query.Terms, 20, Disjunctive)
		got := central.Search(query.Terms, 20, Disjunctive)
		if r := RelativeRecall(got, ref); r != 1 {
			t.Fatalf("self recall = %v", r)
		}
	}
}

func TestSearchTopKConsistencyProperty(t *testing.T) {
	// For random tiny corpora, top-k is always a prefix of the full
	// ranking.
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw)%10 + 1
		corpus := dataset.Generate(dataset.CorpusConfig{NumDocs: 50, VocabSize: 100, MinDocLen: 5, MaxDocLen: 15, Seed: seed})
		x := NewIndex()
		for _, d := range corpus.Docs {
			x.AddDocument(d.ID, d.Terms)
		}
		x.Finalize()
		terms := []string{corpus.Vocab[0], corpus.Vocab[1]}
		full := x.Search(terms, 0, Disjunctive)
		top := x.Search(terms, k, Disjunctive)
		if len(top) > k {
			return false
		}
		for i := range top {
			if top[i] != full[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBM25Scoring(t *testing.T) {
	x := NewIndex()
	x.SetScoring(ScoringBM25)
	if x.Scoring() != ScoringBM25 || ScoringBM25.String() != "bm25" || ScoringTFIDF.String() != "tfidf" {
		t.Fatal("scoring accessors wrong")
	}
	// Two docs with the same tf for "fire", different lengths: BM25's
	// length normalization must rank the shorter one higher.
	x.AddDocument(1, []string{"fire", "fire"})
	x.AddDocument(2, append([]string{"fire", "fire"}, Tokenize("lots more words about forests pests controls services burns today maybe")...))
	x.AddDocument(3, []string{"water"})
	x.Finalize()
	fire := x.Postings("fire")
	if len(fire) != 2 || fire[0].DocID != 1 {
		t.Fatalf("BM25 length normalization: top doc %v", fire)
	}
	// Search works identically under BM25.
	rs := x.Search([]string{"fire"}, 10, Disjunctive)
	if len(rs) != 2 || rs[0].DocID != 1 {
		t.Fatalf("BM25 search = %v", rs)
	}
}

func TestBM25TermFrequencySaturates(t *testing.T) {
	// BM25's tf component saturates: going from tf=1 to tf=2 gains more
	// than tf=10 to tf=11.
	build := func(tf int) float64 {
		x := NewIndex()
		x.SetScoring(ScoringBM25)
		terms := make([]string, tf)
		for i := range terms {
			terms[i] = "fire"
		}
		x.AddDocument(1, terms)
		x.AddDocument(2, []string{"other"})
		x.Finalize()
		return x.MaxScore("fire")
	}
	gainLow := build(2) - build(1)
	gainHigh := build(11) - build(10)
	if gainHigh >= gainLow {
		t.Fatalf("BM25 tf not saturating: gain %v then %v", gainLow, gainHigh)
	}
}

func TestSetScoringAfterFinalizePanics(t *testing.T) {
	x := NewIndex()
	x.AddDocument(1, []string{"a"})
	x.Finalize()
	mustPanic(t, func() { x.SetScoring(ScoringBM25) })
}

func TestLMScoring(t *testing.T) {
	x := NewIndex()
	x.SetScoring(ScoringLM)
	if ScoringLM.String() != "lm" {
		t.Fatal("LM string")
	}
	x.AddDocument(1, []string{"fire", "fire", "forest"})
	x.AddDocument(2, []string{"fire", "water", "water", "water", "water", "water"})
	x.AddDocument(3, []string{"water"})
	x.Finalize()
	fire := x.Postings("fire")
	if len(fire) != 2 {
		t.Fatalf("fire postings: %v", fire)
	}
	// Doc 1 (tf 2 of 3 tokens) must outrank doc 2 (tf 1 of 6 tokens).
	if fire[0].DocID != 1 {
		t.Fatalf("LM top fire doc = %d, want 1", fire[0].DocID)
	}
	for _, p := range fire {
		if p.Score < 0 {
			t.Fatalf("negative LM score %v", p.Score)
		}
	}
	rs := x.Search([]string{"fire", "water"}, 10, Disjunctive)
	if len(rs) == 0 {
		t.Fatal("LM search empty")
	}
}

func FuzzTokenize(f *testing.F) {
	f.Add("Forest FIRE burns")
	f.Add("")
	f.Add("MP3-files; by Theodorakis!")
	f.Add("日本語 text ümlaut")
	f.Fuzz(func(t *testing.T, text string) {
		for _, tok := range Tokenize(text) {
			if len(tok) < 2 {
				t.Fatalf("token %q shorter than 2 bytes", tok)
			}
			if tok != strings.ToLower(tok) {
				t.Fatalf("token %q not lower-cased", tok)
			}
		}
	})
}
