package ir

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The synopsis side file ("<index>.syn") carries the per-term synopses
// the build pipeline precomputes while streaming over the merged
// postings, so a freshly loaded disk index can publish to the directory
// without re-deriving every synopsis. The file is opaque to ir — it
// stores marshaled synopsis bytes plus the scheme parameters (kind,
// bits, seed) the publisher needs to decide whether the precomputed
// bytes match its configuration. Layout:
//
//	magic "IQSY" | uvarint version | uvarint kind | uvarint bits |
//	uvarint seed
//	blobs: per term (ascending): the marshaled synopsis bytes
//	dict:  uvarint nTerms, per term: uvarint len, term, uvarint off,
//	       uvarint byteLen
//	footer: uint64 dictOff | uint32 crc32c | 8-byte trailer magic

const (
	synMagic     = "IQSY"
	synVersion   = 1
	synEndMagic  = "IQSYEND\x01"
	synFooterLen = 8 + 4 + 8
)

type synEntry struct {
	off     int64
	byteLen int64
}

type synReader struct {
	f    *os.File
	kind int
	bits int
	seed uint64
	dict map[string]synEntry
}

// SynopsisWriter streams a synopsis side file. Terms must arrive in
// ascending order.
type SynopsisWriter struct {
	path string
	f    *os.File
	bw   *bufio.Writer
	cw   *crcWriter
	last string
	dict []synEntry
	keys []string
	err  error
}

// NewSynopsisWriter starts a side file for the given scheme parameters.
func NewSynopsisWriter(path string, kind, bits int, seed uint64) (*SynopsisWriter, error) {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return nil, fmt.Errorf("ir: synopsis writer: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	w := &SynopsisWriter{path: path, f: f, bw: bw, cw: newCRCWriter(bw)}
	head := append([]byte(synMagic), 0)
	head = head[:len(synMagic)]
	head = binary.AppendUvarint(head, synVersion)
	head = binary.AppendUvarint(head, uint64(kind))
	head = binary.AppendUvarint(head, uint64(bits))
	head = binary.AppendUvarint(head, seed)
	if _, err := w.cw.Write(head); err != nil {
		w.err = err
	}
	return w, nil
}

// AddTerm appends one term's marshaled synopsis.
func (w *SynopsisWriter) AddTerm(term string, data []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.last != "" && term <= w.last {
		w.err = fmt.Errorf("ir: synopsis writer: term %q out of order", term)
		return w.err
	}
	w.last = term
	off := w.cw.n
	if _, err := w.cw.Write(data); err != nil {
		w.err = err
		return w.err
	}
	w.keys = append(w.keys, term)
	w.dict = append(w.dict, synEntry{off: off, byteLen: int64(len(data))})
	return nil
}

// Close writes the dictionary and footer and renames the file in place.
func (w *SynopsisWriter) Close() error {
	if w.err == nil {
		dictOff := w.cw.n
		buf := binary.AppendUvarint(nil, uint64(len(w.keys)))
		for i, t := range w.keys {
			buf = binary.AppendUvarint(buf, uint64(len(t)))
			buf = append(buf, t...)
			buf = binary.AppendUvarint(buf, uint64(w.dict[i].off))
			buf = binary.AppendUvarint(buf, uint64(w.dict[i].byteLen))
		}
		if _, err := w.cw.Write(buf); err != nil {
			w.err = err
		}
		if w.err == nil {
			var foot [synFooterLen]byte
			binary.BigEndian.PutUint64(foot[0:], uint64(dictOff))
			if _, err := w.cw.Write(foot[:8]); err != nil {
				w.err = err
			} else {
				binary.BigEndian.PutUint32(foot[8:], w.cw.crc.Sum32())
				copy(foot[12:], synEndMagic)
				if _, err := w.cw.Write(foot[8:]); err != nil {
					w.err = err
				}
			}
		}
	}
	if w.err == nil {
		w.err = w.bw.Flush()
	}
	if w.err == nil {
		w.err = w.f.Sync()
	}
	if cerr := w.f.Close(); w.err == nil {
		w.err = cerr
	}
	if w.err != nil {
		os.Remove(w.path + ".tmp")
		return fmt.Errorf("ir: synopsis writer: %w", w.err)
	}
	if err := os.Rename(w.path+".tmp", w.path); err != nil {
		os.Remove(w.path + ".tmp")
		return fmt.Errorf("ir: synopsis writer: %w", err)
	}
	return nil
}

// openSyn opens a synopsis side file; a missing file is (nil, nil).
func openSyn(path string) (*synReader, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ir: open synopses: %w", err)
	}
	s, err := parseSyn(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func parseSyn(f *os.File, path string) (*synReader, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("ir: synopses %s: %w", path, err)
	}
	size := st.Size()
	if size < int64(len(synMagic))+synFooterLen {
		return nil, fmt.Errorf("ir: synopses %s: file too short", path)
	}
	var foot [synFooterLen]byte
	if _, err := f.ReadAt(foot[:], size-synFooterLen); err != nil {
		return nil, fmt.Errorf("ir: synopses %s: read footer: %w", path, err)
	}
	if string(foot[12:]) != synEndMagic {
		return nil, fmt.Errorf("ir: synopses %s: bad trailer magic (truncated?)", path)
	}
	wantCRC := binary.BigEndian.Uint32(foot[8:])
	crc := crc32.New(castagnoli)
	if _, err := io.Copy(crc, io.NewSectionReader(f, 0, size-12)); err != nil {
		return nil, fmt.Errorf("ir: synopses %s: checksum read: %w", path, err)
	}
	if crc.Sum32() != wantCRC {
		return nil, fmt.Errorf("ir: synopses %s: checksum mismatch", path)
	}
	dictOff := int64(binary.BigEndian.Uint64(foot[0:]))
	if dictOff < 0 || dictOff > size-synFooterLen {
		return nil, fmt.Errorf("ir: synopses %s: corrupt dictionary offset", path)
	}
	hr := bufio.NewReader(io.NewSectionReader(f, int64(len(synMagic)), size))
	var magic [len(synMagic)]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil || string(magic[:]) != synMagic {
		return nil, fmt.Errorf("ir: synopses %s: bad magic", path)
	}
	ver, err := binary.ReadUvarint(hr)
	if err != nil || ver != synVersion {
		return nil, fmt.Errorf("ir: synopses %s: version %d, want %d", path, ver, synVersion)
	}
	s := &synReader{f: f, dict: map[string]synEntry{}}
	kind, err := binary.ReadUvarint(hr)
	if err != nil {
		return nil, fmt.Errorf("ir: synopses %s: header: %w", path, err)
	}
	bits, err := binary.ReadUvarint(hr)
	if err != nil {
		return nil, fmt.Errorf("ir: synopses %s: header: %w", path, err)
	}
	seed, err := binary.ReadUvarint(hr)
	if err != nil {
		return nil, fmt.Errorf("ir: synopses %s: header: %w", path, err)
	}
	s.kind, s.bits, s.seed = int(kind), int(bits), seed
	dr := bufio.NewReaderSize(io.NewSectionReader(f, dictOff, size-synFooterLen-dictOff), 1<<16)
	n, err := binary.ReadUvarint(dr)
	if err != nil {
		return nil, fmt.Errorf("ir: synopses %s: dictionary: %w", path, err)
	}
	for i := uint64(0); i < n; i++ {
		tl, err := binary.ReadUvarint(dr)
		if err != nil {
			return nil, fmt.Errorf("ir: synopses %s: dictionary: %w", path, err)
		}
		name := make([]byte, tl)
		if _, err := io.ReadFull(dr, name); err != nil {
			return nil, fmt.Errorf("ir: synopses %s: dictionary: %w", path, err)
		}
		off, err := binary.ReadUvarint(dr)
		if err != nil {
			return nil, fmt.Errorf("ir: synopses %s: dictionary: %w", path, err)
		}
		bl, err := binary.ReadUvarint(dr)
		if err != nil {
			return nil, fmt.Errorf("ir: synopses %s: dictionary: %w", path, err)
		}
		s.dict[string(name)] = synEntry{off: int64(off), byteLen: int64(bl)}
	}
	return s, nil
}

// PrebuiltSynopsis returns the term's precomputed marshaled synopsis,
// or (nil, false) when the index has no synopsis side file or the term
// is absent from it.
func (x *DiskIndex) PrebuiltSynopsis(term string) ([]byte, bool) {
	if x.syn == nil {
		return nil, false
	}
	e, ok := x.syn.dict[term]
	if !ok {
		return nil, false
	}
	buf := make([]byte, e.byteLen)
	if _, err := x.syn.f.ReadAt(buf, e.off); err != nil {
		return nil, false
	}
	return buf, true
}

// SynopsisScheme reports the scheme parameters (synopsis kind, bits,
// permutation seed) the side file was built with; ok is false when the
// index has no precomputed synopses.
func (x *DiskIndex) SynopsisScheme() (kind, bits int, seed uint64, ok bool) {
	if x.syn == nil {
		return 0, 0, 0, false
	}
	return x.syn.kind, x.syn.bits, x.syn.seed, true
}
