package ir

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// DiskIndex is the out-of-core reader over the on-disk posting format
// (see diskformat.go): the term dictionary and document-ID list are
// resident, postings are pread on demand per term. It implements
// Searcher, so a peer can serve queries from a million-document index
// with memory proportional to the vocabulary, not the corpus.
//
// The reader uses positional reads (ReadAt) rather than mmap: preads
// are portable, bound memory explicitly, and on the short score-sorted
// prefixes the query path touches the kernel page cache already gives
// mmap-like performance. All methods are safe for concurrent use —
// ReadAt is stateless and the resident structures are immutable.
type DiskIndex struct {
	f       *os.File
	path    string
	scoring Scoring
	terms   []string // ascending
	dict    map[string]diskDictEntry
	numDocs int
	docIDs  []uint64 // sorted ascending
	maxDF   int
	syn     *synReader // nil when no synopsis side file exists
}

// IsDiskIndex reports whether the file at path starts with the on-disk
// index magic — the cheap sniff callers use to choose between OpenDisk
// (out-of-core reader) and LoadFile (materializing snapshot loader).
func IsDiskIndex(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var magic [len(diskMagic)]byte
	n, _ := f.ReadAt(magic[:], 0)
	return n == len(diskMagic) && string(magic[:]) == diskMagic
}

// OpenDisk opens an on-disk index written by DiskWriter (directly or
// through the buildix pipeline), verifies its checksum, and loads the
// dictionary and document list. A synopsis side file at path+".syn" is
// picked up automatically when present.
func OpenDisk(path string) (*DiskIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ir: open disk index: %w", err)
	}
	x, err := openDisk(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	if syn, err := openSyn(path + ".syn"); err != nil {
		x.Close()
		return nil, err
	} else if syn != nil {
		x.syn = syn
	}
	return x, nil
}

func openDisk(f *os.File, path string) (*DiskIndex, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("ir: disk index %s: %w", path, err)
	}
	size := st.Size()
	if size < int64(len(diskMagic))+1+diskFooterLen {
		return nil, fmt.Errorf("ir: disk index %s: file too short (%d bytes)", path, size)
	}
	var foot [diskFooterLen]byte
	if _, err := f.ReadAt(foot[:], size-diskFooterLen); err != nil {
		return nil, fmt.Errorf("ir: disk index %s: read footer: %w", path, err)
	}
	if string(foot[21:]) != diskEndMagic {
		return nil, fmt.Errorf("ir: disk index %s: bad trailer magic (truncated or not a disk index)", path)
	}
	dictOff := int64(binary.BigEndian.Uint64(foot[0:]))
	docsOff := int64(binary.BigEndian.Uint64(foot[8:]))
	scoring := Scoring(foot[16])
	wantCRC := binary.BigEndian.Uint32(foot[17:])
	if dictOff < 0 || docsOff < 0 || docsOff > dictOff || dictOff > size-diskFooterLen {
		return nil, fmt.Errorf("ir: disk index %s: corrupt section offsets", path)
	}

	// Verify the checksum over everything before the CRC field: one
	// sequential pass at open buys corruption detection for the life of
	// the reader.
	crc := crc32.New(castagnoli)
	if _, err := io.Copy(crc, io.NewSectionReader(f, 0, size-12)); err != nil {
		return nil, fmt.Errorf("ir: disk index %s: checksum read: %w", path, err)
	}
	if crc.Sum32() != wantCRC {
		return nil, fmt.Errorf("ir: disk index %s: checksum mismatch (corrupt or truncated)", path)
	}

	// Header.
	head := make([]byte, len(diskMagic)+binary.MaxVarintLen64)
	if _, err := f.ReadAt(head[:len(diskMagic)+1], 0); err != nil {
		return nil, fmt.Errorf("ir: disk index %s: read header: %w", path, err)
	}
	if string(head[:len(diskMagic)]) != diskMagic {
		return nil, fmt.Errorf("ir: disk index %s: bad magic", path)
	}
	if v := head[len(diskMagic)]; v != diskVersion {
		return nil, fmt.Errorf("ir: disk index %s: version %d, want %d", path, v, diskVersion)
	}

	x := &DiskIndex{f: f, path: path, scoring: scoring, dict: map[string]diskDictEntry{}}

	// Doc list.
	dr := bufio.NewReaderSize(io.NewSectionReader(f, docsOff, dictOff-docsOff), 1<<16)
	nDocs, err := binary.ReadUvarint(dr)
	if err != nil {
		return nil, fmt.Errorf("ir: disk index %s: doc list: %w", path, err)
	}
	x.numDocs = int(nDocs)
	x.docIDs = make([]uint64, 0, nDocs)
	prev := uint64(0)
	for i := uint64(0); i < nDocs; i++ {
		d, err := binary.ReadUvarint(dr)
		if err != nil {
			return nil, fmt.Errorf("ir: disk index %s: doc list: %w", path, err)
		}
		prev += d
		x.docIDs = append(x.docIDs, prev)
	}

	// Dictionary.
	tr := bufio.NewReaderSize(io.NewSectionReader(f, dictOff, size-diskFooterLen-dictOff), 1<<16)
	nTerms, err := binary.ReadUvarint(tr)
	if err != nil {
		return nil, fmt.Errorf("ir: disk index %s: dictionary: %w", path, err)
	}
	x.terms = make([]string, 0, nTerms)
	for i := uint64(0); i < nTerms; i++ {
		tl, err := binary.ReadUvarint(tr)
		if err != nil {
			return nil, fmt.Errorf("ir: disk index %s: dictionary: %w", path, err)
		}
		name := make([]byte, tl)
		if _, err := io.ReadFull(tr, name); err != nil {
			return nil, fmt.Errorf("ir: disk index %s: dictionary: %w", path, err)
		}
		var e diskDictEntry
		var v uint64
		if v, err = binary.ReadUvarint(tr); err == nil {
			e.df = int(v)
			if v, err = binary.ReadUvarint(tr); err == nil {
				e.off = int64(v)
				if v, err = binary.ReadUvarint(tr); err == nil {
					e.byteLen = int64(v)
					if e.maxBits, err = binary.ReadUvarint(tr); err == nil {
						e.sumBits, err = binary.ReadUvarint(tr)
					}
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("ir: disk index %s: dictionary: %w", path, err)
		}
		term := string(name)
		x.terms = append(x.terms, term)
		x.dict[term] = e
		if e.df > x.maxDF {
			x.maxDF = e.df
		}
	}
	return x, nil
}

// Close releases the underlying file handles.
func (x *DiskIndex) Close() error {
	var err error
	if x.syn != nil {
		err = x.syn.f.Close()
		x.syn = nil
	}
	if cerr := x.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Path returns the index file's path.
func (x *DiskIndex) Path() string { return x.path }

// NumDocs returns the number of indexed documents.
func (x *DiskIndex) NumDocs() int { return x.numDocs }

// TermSpaceSize returns the number of distinct terms.
func (x *DiskIndex) TermSpaceSize() int { return len(x.terms) }

// Terms returns the indexed terms in ascending order. The returned
// slice is shared; callers must not modify it.
func (x *DiskIndex) Terms() []string { return x.terms }

// DocFreq returns df(term).
func (x *DiskIndex) DocFreq(term string) int { return x.dict[term].df }

// MaxDocFreq returns the largest document frequency of any term.
func (x *DiskIndex) MaxDocFreq() int { return x.maxDF }

// MaxScore returns the highest score in the term's postings list.
func (x *DiskIndex) MaxScore(term string) float64 {
	e, ok := x.dict[term]
	if !ok {
		return 0
	}
	return math.Float64frombits(e.maxBits)
}

// AvgScore returns the mean score of the term's postings list. The sum
// was computed by the writer in list order — the same order the
// in-memory index sums in — so the result is bit-identical.
func (x *DiskIndex) AvgScore(term string) float64 {
	e, ok := x.dict[term]
	if !ok {
		return 0
	}
	return math.Float64frombits(e.sumBits) / float64(e.df)
}

// Scoring returns the relevance model the index was built with.
func (x *DiskIndex) Scoring() Scoring { return x.scoring }

// Postings preads and decodes the term's postings list (score
// descending). The returned slice is freshly allocated per call.
func (x *DiskIndex) Postings(term string) []Posting {
	e, ok := x.dict[term]
	if !ok {
		return nil
	}
	list, err := x.readPostings(e)
	if err != nil {
		// The file was checksum-verified at open; a read failure here is
		// an environmental error (file deleted/truncated underneath us).
		// The Searcher interface has no error channel — fail loudly.
		panic(fmt.Sprintf("ir: disk index %s: postings %q: %v", x.path, term, err))
	}
	return list
}

func (x *DiskIndex) readPostings(e diskDictEntry) ([]Posting, error) {
	buf := make([]byte, e.byteLen)
	if _, err := x.f.ReadAt(buf, e.off); err != nil {
		return nil, err
	}
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || int(n) != e.df {
		return nil, fmt.Errorf("posting count %d, dictionary df %d", n, e.df)
	}
	buf = buf[sz:]
	list := make([]Posting, 0, n)
	bits := uint64(0)
	for i := uint64(0); i < n; i++ {
		d, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return nil, fmt.Errorf("truncated score delta")
		}
		buf = buf[sz:]
		if i == 0 {
			bits = d
		} else {
			bits -= d
		}
		doc, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return nil, fmt.Errorf("truncated doc ID")
		}
		buf = buf[sz:]
		list = append(list, Posting{DocID: doc, Score: math.Float64frombits(bits)})
	}
	return list, nil
}

// DocIDs returns the term's document IDs in postings order.
func (x *DiskIndex) DocIDs(term string) []uint64 {
	list := x.Postings(term)
	if list == nil {
		return nil
	}
	ids := make([]uint64, len(list))
	for i, p := range list {
		ids[i] = p.DocID
	}
	return ids
}

// Search executes a multi-keyword query through the shared execution
// core — results are entry-for-entry identical to the in-memory index
// built over the same corpus.
func (x *DiskIndex) Search(terms []string, k int, mode Mode) []Result {
	return searchPostings(x.Postings, terms, k, mode)
}

// AllDocIDs returns the sorted document-ID list (shared; do not modify).
func (x *DiskIndex) AllDocIDs() []uint64 { return x.docIDs }

// Materialize loads the whole index into an in-memory *Index — the
// bridge for callers that need the mutable/gob-snapshot form. The
// result is finalized and query-identical to the disk reader.
func (x *DiskIndex) Materialize() *Index {
	m := &Index{
		postings:  make(map[string][]Posting, len(x.terms)),
		docs:      make(map[uint64]struct{}, x.numDocs),
		docLen:    map[uint64]int{},
		scoring:   x.scoring,
		finalized: true,
	}
	for _, t := range x.terms {
		m.postings[t] = x.Postings(t)
	}
	for _, d := range x.docIDs {
		m.docs[d] = struct{}{}
	}
	return m
}

// SaveFile copies the on-disk index (and its synopsis side file, when
// present) to path — the disk-index counterpart of (*Index).SaveFile.
func (x *DiskIndex) SaveFile(path string) error {
	if err := copyFile(x.path, path); err != nil {
		return fmt.Errorf("ir: save disk index: %w", err)
	}
	if x.syn != nil {
		if err := copyFile(x.path+".syn", path+".syn"); err != nil {
			return fmt.Errorf("ir: save disk index synopses: %w", err)
		}
	}
	return nil
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst + ".tmp")
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		os.Remove(dst + ".tmp")
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		os.Remove(dst + ".tmp")
		return err
	}
	if err := out.Close(); err != nil {
		os.Remove(dst + ".tmp")
		return err
	}
	return os.Rename(dst+".tmp", dst)
}
