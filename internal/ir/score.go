package ir

import (
	"math"
	"sort"
)

// Scoring selects the relevance model the index computes at Finalize.
// The paper's quality metadata ("tf*idf-based scores, scores derived
// from statistical language models", Section 5.1) is model-agnostic;
// both models below produce the <term, docID, score> postings the rest
// of the system consumes.
type Scoring int

const (
	// ScoringTFIDF is the default model:
	// score(t,d) = (1 + ln tf) · ln(1 + N/df).
	ScoringTFIDF Scoring = iota
	// ScoringBM25 is Okapi BM25 with k1 = 1.2, b = 0.75:
	// score(t,d) = idf(t) · tf·(k1+1) / (tf + k1·(1−b+b·|d|/avgdl)),
	// idf(t) = ln(1 + (N−df+0.5)/(df+0.5)).
	ScoringBM25
	// ScoringLM is Dirichlet-smoothed query likelihood (µ = 2000):
	// score(t,d) = ln( (tf + µ·p(t|C)) / ((|d| + µ)·p(t|C)) ),
	// where p(t|C) is the term's collection language-model probability.
	// The per-term scores sum to the document's query log-likelihood up
	// to a query-constant, so ranking is exact.
	ScoringLM
)

// String names the scoring model.
func (s Scoring) String() string {
	switch s {
	case ScoringBM25:
		return "bm25"
	case ScoringLM:
		return "lm"
	default:
		return "tfidf"
	}
}

// BM25 constants (standard Okapi parameterization).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// lmMu is the Dirichlet smoothing mass (Zhai/Lafferty's standard 2000).
const lmMu = 2000.0

// SetScoring selects the relevance model. It must be called before
// Finalize; afterwards it panics.
func (x *Index) SetScoring(s Scoring) {
	if x.finalized {
		panic("ir: SetScoring after Finalize")
	}
	x.scoring = s
}

// Scoring returns the index's relevance model.
func (x *Index) Scoring() Scoring { return x.scoring }

// finalizeScores computes the postings lists for the configured model.
// Called by Finalize with x.tf still populated.
func (x *Index) finalizeScores() {
	n := float64(len(x.docs))
	var avgdl, totalTokens float64
	if x.scoring == ScoringBM25 || x.scoring == ScoringLM {
		var total int
		for _, l := range x.docLen {
			total += l
		}
		totalTokens = float64(total)
		if len(x.docLen) > 0 {
			avgdl = float64(total) / float64(len(x.docLen))
		}
		if avgdl == 0 {
			avgdl = 1
		}
		if totalTokens == 0 {
			totalTokens = 1
		}
	}
	for t, m := range x.tf {
		df := float64(len(m))
		list := make([]Posting, 0, len(m))
		switch x.scoring {
		case ScoringLM:
			// Collection frequency of the term (total occurrences).
			var cf float64
			for _, f := range m {
				cf += float64(f)
			}
			pc := cf / totalTokens
			for d, f := range m {
				tf := float64(f)
				score := math.Log((tf + lmMu*pc) / ((float64(x.docLen[d]) + lmMu) * pc))
				if score < 0 {
					score = 0 // below-background terms carry no evidence
				}
				list = append(list, Posting{DocID: d, Score: score})
			}
		case ScoringBM25:
			idf := math.Log(1 + (n-df+0.5)/(df+0.5))
			for d, f := range m {
				tf := float64(f)
				norm := tf + bm25K1*(1-bm25B+bm25B*float64(x.docLen[d])/avgdl)
				list = append(list, Posting{DocID: d, Score: idf * tf * (bm25K1 + 1) / norm})
			}
		default:
			idf := math.Log(1 + n/df)
			for d, f := range m {
				list = append(list, Posting{DocID: d, Score: (1 + math.Log(float64(f))) * idf})
			}
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].Score != list[j].Score {
				return list[i].Score > list[j].Score
			}
			return list[i].DocID < list[j].DocID
		})
		x.postings[t] = list
	}
}
