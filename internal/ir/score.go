package ir

import (
	"math"
	"sort"
)

// Scoring selects the relevance model the index computes at Finalize.
// The paper's quality metadata ("tf*idf-based scores, scores derived
// from statistical language models", Section 5.1) is model-agnostic;
// both models below produce the <term, docID, score> postings the rest
// of the system consumes.
type Scoring int

const (
	// ScoringTFIDF is the default model:
	// score(t,d) = (1 + ln tf) · ln(1 + N/df).
	ScoringTFIDF Scoring = iota
	// ScoringBM25 is Okapi BM25 with k1 = 1.2, b = 0.75:
	// score(t,d) = idf(t) · tf·(k1+1) / (tf + k1·(1−b+b·|d|/avgdl)),
	// idf(t) = ln(1 + (N−df+0.5)/(df+0.5)).
	ScoringBM25
	// ScoringLM is Dirichlet-smoothed query likelihood (µ = 2000):
	// score(t,d) = ln( (tf + µ·p(t|C)) / ((|d| + µ)·p(t|C)) ),
	// where p(t|C) is the term's collection language-model probability.
	// The per-term scores sum to the document's query log-likelihood up
	// to a query-constant, so ranking is exact.
	ScoringLM
)

// String names the scoring model.
func (s Scoring) String() string {
	switch s {
	case ScoringBM25:
		return "bm25"
	case ScoringLM:
		return "lm"
	default:
		return "tfidf"
	}
}

// BM25 constants (standard Okapi parameterization).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// lmMu is the Dirichlet smoothing mass (Zhai/Lafferty's standard 2000).
const lmMu = 2000.0

// SetScoring selects the relevance model. It must be called before
// Finalize; afterwards it panics.
func (x *Index) SetScoring(s Scoring) {
	if x.finalized {
		panic("ir: SetScoring after Finalize")
	}
	x.scoring = s
}

// Scoring returns the index's relevance model.
func (x *Index) Scoring() Scoring { return x.scoring }

// DocTF is one raw pre-scoring posting: a document and the term's
// occurrence count within it. The external-memory build pipeline spills
// and merges DocTF entries; scoring turns them into Postings.
type DocTF struct {
	// DocID is the global document identifier.
	DocID uint64
	// TF is the term frequency in the document.
	TF int
}

// CorpusStats are the collection-wide statistics scoring needs beyond
// the term's own entries. DocLen may be nil for models that ignore
// document length (TF·IDF).
type CorpusStats struct {
	// NumDocs is the total number of indexed documents (N).
	NumDocs int
	// TotalTokens is the total token count over all documents (the
	// denominator of the collection language model).
	TotalTokens int64
	// DocLen returns a document's token count (BM25/LM length
	// normalization).
	DocLen func(docID uint64) int
}

// ScoreTerm computes one term's postings list from raw (docID, tf)
// entries under the given model and sorts it by descending score (ties
// broken by ascending docID). Both the in-memory Finalize and the
// out-of-core merge stage score through this single kernel, so the two
// index builds produce bit-identical postings: every score is a
// deterministic function of integer statistics (tf, df, N, Σ|d|), with
// no accumulation whose order could differ between the paths.
func ScoreTerm(model Scoring, stats CorpusStats, entries []DocTF) []Posting {
	n := float64(stats.NumDocs)
	df := float64(len(entries))
	docLen := stats.DocLen
	if docLen == nil {
		docLen = func(uint64) int { return 0 }
	}
	list := make([]Posting, 0, len(entries))
	switch model {
	case ScoringLM:
		totalTokens := float64(stats.TotalTokens)
		if totalTokens == 0 {
			totalTokens = 1
		}
		// Collection frequency of the term (total occurrences). The
		// summands are integers, so the sum is exact regardless of the
		// order the entries arrive in.
		var cf float64
		for _, e := range entries {
			cf += float64(e.TF)
		}
		pc := cf / totalTokens
		for _, e := range entries {
			tf := float64(e.TF)
			score := math.Log((tf + lmMu*pc) / ((float64(docLen(e.DocID)) + lmMu) * pc))
			if score < 0 {
				score = 0 // below-background terms carry no evidence
			}
			list = append(list, Posting{DocID: e.DocID, Score: score})
		}
	case ScoringBM25:
		avgdl := float64(0)
		if stats.NumDocs > 0 {
			avgdl = float64(stats.TotalTokens) / float64(stats.NumDocs)
		}
		if avgdl == 0 {
			avgdl = 1
		}
		idf := math.Log(1 + (n-df+0.5)/(df+0.5))
		for _, e := range entries {
			tf := float64(e.TF)
			norm := tf + bm25K1*(1-bm25B+bm25B*float64(docLen(e.DocID))/avgdl)
			list = append(list, Posting{DocID: e.DocID, Score: idf * tf * (bm25K1 + 1) / norm})
		}
	default:
		idf := math.Log(1 + n/df)
		for _, e := range entries {
			list = append(list, Posting{DocID: e.DocID, Score: (1 + math.Log(float64(e.TF))) * idf})
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].Score != list[j].Score {
			return list[i].Score > list[j].Score
		}
		return list[i].DocID < list[j].DocID
	})
	return list
}

// finalizeScores computes the postings lists for the configured model.
// Called by Finalize with x.tf still populated.
func (x *Index) finalizeScores() {
	var total int64
	for _, l := range x.docLen {
		total += int64(l)
	}
	stats := CorpusStats{
		NumDocs:     len(x.docs),
		TotalTokens: total,
		DocLen:      func(d uint64) int { return x.docLen[d] },
	}
	for t, m := range x.tf {
		entries := make([]DocTF, 0, len(m))
		for d, f := range m {
			entries = append(entries, DocTF{DocID: d, TF: f})
		}
		x.postings[t] = ScoreTerm(x.scoring, stats, entries)
	}
}
