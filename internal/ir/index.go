package ir

// Posting is one inverted-list entry: a document and its relevance score
// for the list's term.
type Posting struct {
	// DocID is the global document identifier.
	DocID uint64
	// Score is the term's TF·IDF weight in the document.
	Score float64
}

// Index is a peer's local inverted index. Build it with AddDocument (or
// AddText) followed by Finalize; queries and statistics are only valid on
// a finalized index.
//
// Scores are TF·IDF with the peer's local collection statistics:
//
//	score(t,d) = (1 + ln tf(t,d)) · ln(1 + N/df(t))
//
// the standard formulation the paper's "IR-style relevance measures"
// refer to. Postings lists are kept sorted by descending score, the order
// both local top-k evaluation and the histogram synopses of Section 7.1
// consume.
type Index struct {
	postings  map[string][]Posting
	tf        map[string]map[uint64]int // term → doc → term frequency (pre-finalize)
	docs      map[uint64]struct{}
	docLen    map[uint64]int // doc → token count (BM25 length normalization)
	scoring   Scoring
	finalized bool
}

// NewIndex returns an empty index with TF·IDF scoring; see SetScoring
// for BM25.
func NewIndex() *Index {
	return &Index{
		postings: make(map[string][]Posting),
		tf:       make(map[string]map[uint64]int),
		docs:     make(map[uint64]struct{}),
		docLen:   make(map[uint64]int),
	}
}

// AddDocument indexes a tokenized document. Adding the same docID twice
// replaces nothing and double-counts term frequencies; callers are
// expected to feed each document once. Panics if called after Finalize.
func (x *Index) AddDocument(docID uint64, terms []string) {
	if x.finalized {
		panic("ir: AddDocument after Finalize")
	}
	x.docs[docID] = struct{}{}
	x.docLen[docID] += len(terms)
	for _, t := range terms {
		m := x.tf[t]
		if m == nil {
			m = make(map[uint64]int)
			x.tf[t] = m
		}
		m[docID]++
	}
}

// AddText tokenizes and indexes free text.
func (x *Index) AddText(docID uint64, text string) {
	x.AddDocument(docID, Tokenize(text))
}

// Finalize computes relevance scores under the configured model
// (TF·IDF by default, see SetScoring) and sorts every postings list by
// descending score (ties broken by ascending docID for determinism).
// The index is immutable afterwards.
func (x *Index) Finalize() {
	if x.finalized {
		return
	}
	x.finalizeScores()
	x.tf = nil
	x.finalized = true
}

// NumDocs returns the number of indexed documents.
func (x *Index) NumDocs() int { return len(x.docs) }

// TermSpaceSize returns |V_i|, the number of distinct terms in the index —
// the quantity CORI's T component normalizes by.
func (x *Index) TermSpaceSize() int {
	if x.finalized {
		return len(x.postings)
	}
	return len(x.tf)
}

// Terms returns the indexed terms in unspecified order.
func (x *Index) Terms() []string {
	x.mustFinal()
	ts := make([]string, 0, len(x.postings))
	for t := range x.postings {
		ts = append(ts, t)
	}
	return ts
}

// Postings returns the postings list for a term, sorted by descending
// score. The returned slice is shared; callers must not modify it.
func (x *Index) Postings(term string) []Posting {
	x.mustFinal()
	return x.postings[term]
}

// DocFreq returns df(term), the number of documents containing the term.
func (x *Index) DocFreq(term string) int {
	x.mustFinal()
	return len(x.postings[term])
}

// MaxDocFreq returns the largest document frequency of any term in the
// index (CORI's cdf_max).
func (x *Index) MaxDocFreq() int {
	x.mustFinal()
	m := 0
	for _, list := range x.postings {
		if len(list) > m {
			m = len(list)
		}
	}
	return m
}

// MaxScore returns the highest score in the term's postings list, 0 if
// the term is absent. Published in directory Posts as a quality signal.
func (x *Index) MaxScore(term string) float64 {
	x.mustFinal()
	list := x.postings[term]
	if len(list) == 0 {
		return 0
	}
	return list[0].Score
}

// AvgScore returns the mean score of the term's postings list, 0 if the
// term is absent.
func (x *Index) AvgScore(term string) float64 {
	x.mustFinal()
	list := x.postings[term]
	if len(list) == 0 {
		return 0
	}
	var sum float64
	for _, p := range list {
		sum += p.Score
	}
	return sum / float64(len(list))
}

// DocIDs returns the document IDs of the term's postings list, in list
// order (descending score). This is the set a peer summarizes into its
// per-term synopsis.
func (x *Index) DocIDs(term string) []uint64 {
	x.mustFinal()
	list := x.postings[term]
	ids := make([]uint64, len(list))
	for i, p := range list {
		ids[i] = p.DocID
	}
	return ids
}

func (x *Index) mustFinal() {
	if !x.finalized {
		panic("ir: index not finalized")
	}
}
