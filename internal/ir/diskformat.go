package ir

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
)

// This file defines the on-disk index format the external-memory build
// pipeline (internal/buildix) emits and DiskIndex reads. One index is
// one self-contained file:
//
//	header   magic "IQDX" + uvarint version
//	postings per term, in ascending term order:
//	           uvarint n, then n × (uvarint scoreDelta, uvarint docID)
//	         where the first scoreDelta is the raw Float64bits of the
//	         highest score and each subsequent delta is prevBits−curBits.
//	         Scores are non-negative and the list is sorted descending,
//	         so the bit patterns are monotonically non-increasing and
//	         every delta is a small non-negative integer — the uvarint
//	         sweet spot.
//	docs     uvarint nDocs, then delta/uvarint-encoded sorted doc IDs
//	dict     uvarint nTerms, then per term (ascending): uvarint len,
//	         term bytes, uvarint df, uvarint offset, uvarint byteLen,
//	         uvarint maxScoreBits, uvarint sumScoreBits
//	footer   uint64 dictOff | uint64 docsOff | byte scoring |
//	         uint32 crc32c(file[0:crcField]) | 8-byte trailer magic
//
// The postings blob is the bulk and is never resident: DiskIndex preads
// a term's byte range on demand. The dictionary and doc-ID list are
// small (O(terms), O(docs)) and load at open.

const (
	diskMagic     = "IQDX"
	diskVersion   = 1
	diskEndMagic  = "IQDXEND\x01"
	diskFooterLen = 8 + 8 + 1 + 4 + 8
)

// crcWriter counts bytes and maintains a running CRC over everything
// written through it.
type crcWriter struct {
	w   io.Writer
	n   int64
	crc hash.Hash32
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func newCRCWriter(w io.Writer) *crcWriter {
	return &crcWriter{w: w, crc: crc32.New(castagnoli)}
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.crc.Write(p[:n])
	return n, err
}

// diskDictEntry is one term's dictionary row.
type diskDictEntry struct {
	df      int
	off     int64
	byteLen int64
	maxBits uint64
	sumBits uint64 // Float64bits of the score sum, for exact AvgScore
}

// DiskWriter streams an index into the on-disk format. Terms must be
// added in strictly ascending order with their postings already scored
// and sorted (ScoreTerm order); Close writes the doc list, dictionary,
// and checksummed footer, then atomically renames the file into place.
type DiskWriter struct {
	path    string
	f       *os.File
	bw      *bufio.Writer
	cw      *crcWriter
	scoring Scoring
	terms   []string
	dict    []diskDictEntry
	docIDs  []uint64
	scratch []byte
	err     error
}

// NewDiskWriter starts writing a disk index to path (via path+".tmp").
func NewDiskWriter(path string, scoring Scoring) (*DiskWriter, error) {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return nil, fmt.Errorf("ir: disk writer: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	w := &DiskWriter{path: path, f: f, bw: bw, cw: newCRCWriter(bw), scoring: scoring}
	w.scratch = make([]byte, 0, 4096)
	w.writeBytes([]byte(diskMagic))
	w.scratch = binary.AppendUvarint(w.scratch[:0], diskVersion)
	w.writeBytes(w.scratch)
	return w, nil
}

func (w *DiskWriter) writeBytes(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.cw.Write(p)
}

// AddTerm appends one term's postings. list must be sorted by
// descending score (ties by ascending docID) with non-negative scores —
// the order and range ScoreTerm guarantees.
func (w *DiskWriter) AddTerm(term string, list []Posting) error {
	if w.err != nil {
		return w.err
	}
	if n := len(w.terms); n > 0 && w.terms[n-1] >= term {
		w.err = fmt.Errorf("ir: disk writer: term %q out of order (after %q)", term, w.terms[n-1])
		return w.err
	}
	if len(list) == 0 {
		return nil // absent terms are simply not in the dictionary
	}
	off := w.cw.n
	buf := binary.AppendUvarint(w.scratch[:0], uint64(len(list)))
	prev := uint64(0)
	var sum float64
	for i, p := range list {
		if p.Score < 0 {
			w.err = fmt.Errorf("ir: disk writer: negative score %g for %q", p.Score, term)
			return w.err
		}
		bits := math.Float64bits(p.Score)
		if i == 0 {
			buf = binary.AppendUvarint(buf, bits)
		} else {
			if bits > prev {
				w.err = fmt.Errorf("ir: disk writer: postings for %q not score-descending", term)
				return w.err
			}
			buf = binary.AppendUvarint(buf, prev-bits)
		}
		prev = bits
		buf = binary.AppendUvarint(buf, p.DocID)
		sum += p.Score
	}
	w.scratch = buf[:0]
	w.writeBytes(buf)
	if w.err != nil {
		return w.err
	}
	w.terms = append(w.terms, term)
	w.dict = append(w.dict, diskDictEntry{
		df:      len(list),
		off:     off,
		byteLen: w.cw.n - off,
		maxBits: math.Float64bits(list[0].Score),
		sumBits: math.Float64bits(sum),
	})
	return nil
}

// AddDocs records the document ID set (any order; duplicates are
// collapsed). Must be called before Close.
func (w *DiskWriter) AddDocs(ids []uint64) {
	w.docIDs = append(w.docIDs, ids...)
}

// Close writes the doc list, dictionary, and footer, syncs, and renames
// the temp file over the target path.
func (w *DiskWriter) Close() error {
	if w.err == nil {
		sort.Slice(w.docIDs, func(i, j int) bool { return w.docIDs[i] < w.docIDs[j] })
		// Collapse duplicates in place.
		uniq := w.docIDs[:0]
		for i, d := range w.docIDs {
			if i == 0 || d != uniq[len(uniq)-1] {
				uniq = append(uniq, d)
			}
		}
		w.docIDs = uniq

		docsOff := w.cw.n
		buf := binary.AppendUvarint(w.scratch[:0], uint64(len(w.docIDs)))
		prev := uint64(0)
		for _, d := range w.docIDs {
			buf = binary.AppendUvarint(buf, d-prev)
			prev = d
		}
		w.writeBytes(buf)

		dictOff := w.cw.n
		buf = binary.AppendUvarint(buf[:0], uint64(len(w.terms)))
		w.writeBytes(buf)
		for i, t := range w.terms {
			e := w.dict[i]
			buf = binary.AppendUvarint(buf[:0], uint64(len(t)))
			buf = append(buf, t...)
			buf = binary.AppendUvarint(buf, uint64(e.df))
			buf = binary.AppendUvarint(buf, uint64(e.off))
			buf = binary.AppendUvarint(buf, uint64(e.byteLen))
			buf = binary.AppendUvarint(buf, e.maxBits)
			buf = binary.AppendUvarint(buf, e.sumBits)
			w.writeBytes(buf)
		}

		var foot [diskFooterLen]byte
		binary.BigEndian.PutUint64(foot[0:], uint64(dictOff))
		binary.BigEndian.PutUint64(foot[8:], uint64(docsOff))
		foot[16] = byte(w.scoring)
		// CRC covers everything before the CRC field itself.
		w.writeBytes(foot[:17])
		crc := w.cw.crc.Sum32()
		binary.BigEndian.PutUint32(foot[17:], crc)
		copy(foot[21:], diskEndMagic)
		w.writeBytes(foot[17:])
	}
	if w.err == nil {
		w.err = w.bw.Flush()
	}
	if w.err == nil {
		w.err = w.f.Sync()
	}
	if cerr := w.f.Close(); w.err == nil {
		w.err = cerr
	}
	if w.err != nil {
		os.Remove(w.path + ".tmp")
		return fmt.Errorf("ir: disk writer: %w", w.err)
	}
	if err := os.Rename(w.path+".tmp", w.path); err != nil {
		os.Remove(w.path + ".tmp")
		return fmt.Errorf("ir: disk writer: %w", err)
	}
	return nil
}

// BytesWritten returns how many bytes have been written so far.
func (w *DiskWriter) BytesWritten() int64 { return w.cw.n }

// WriteDiskIndex writes a finalized in-memory index in the on-disk
// format — the seam tests and small deployments use to produce disk
// indexes without the full pipeline. Postings are streamed in ascending
// term order.
func WriteDiskIndex(x *Index, path string) error {
	x.mustFinal()
	w, err := NewDiskWriter(path, x.scoring)
	if err != nil {
		return err
	}
	terms := x.Terms()
	sort.Strings(terms)
	for _, t := range terms {
		if err := w.AddTerm(t, x.postings[t]); err != nil {
			w.Close()
			return err
		}
	}
	ids := make([]uint64, 0, len(x.docs))
	for d := range x.docs {
		ids = append(ids, d)
	}
	w.AddDocs(ids)
	return w.Close()
}
