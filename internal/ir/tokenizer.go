// Package ir is the local information-retrieval engine of a MINERVA peer:
// an inverted index with <term, docID, score> postings (the paper's
// Section 1.2 data model), TF·IDF scoring, top-k query execution in
// conjunctive and disjunctive modes, cross-peer result merging, and
// relative-recall measurement against a centralized reference index
// (Section 8.1's evaluation metric). The index comes in two
// interchangeable forms behind the Searcher interface: the in-memory
// *Index and the out-of-core *DiskIndex reader over the on-disk posting
// format written by the external-memory build pipeline.
package ir

import (
	"unicode"
	"unicode/utf8"
)

// stopwords is a minimal English stopword list; enough to keep synthetic
// and example text indexes from drowning in glue words.
var stopwords = map[string]struct{}{
	"a": {}, "an": {}, "and": {}, "are": {}, "as": {}, "at": {}, "be": {},
	"by": {}, "for": {}, "from": {}, "has": {}, "he": {}, "in": {}, "is": {},
	"it": {}, "its": {}, "of": {}, "on": {}, "or": {}, "that": {}, "the": {},
	"to": {}, "was": {}, "were": {}, "will": {}, "with": {},
}

// Tokenize splits free text into index terms: lower-cased maximal runs of
// letters and digits, with stopwords and single-byte tokens dropped.
func Tokenize(text string) []string {
	return TokenizeInto(nil, text)
}

// TokenizeInto appends text's index terms to dst and returns the
// extended slice — the allocation-free form the out-of-core build hot
// loop uses. Tokens that are already lower-case are emitted as
// substrings of text (zero copies, zero allocations when dst has
// capacity); only tokens that need case folding are rebuilt in a
// scratch buffer. Callers that retain the returned terms beyond the
// lifetime of text must copy them (substrings pin text's backing
// array) — the build pipeline interns them anyway.
func TokenizeInto(dst []string, text string) []string {
	var scratch []byte // grown only when a token needs case folding
	start := -1        // byte offset of the current token, -1 outside one
	fold := false      // current token contains an upper-case rune
	emit := func(end int) {
		if start < 0 {
			return
		}
		tok := text[start:end]
		start = -1
		if fold {
			fold = false
			scratch = scratch[:0]
			for _, r := range tok {
				scratch = utf8.AppendRune(scratch, unicode.ToLower(r))
			}
			tok = string(scratch)
		}
		if len(tok) < 2 {
			return
		}
		if _, stop := stopwords[tok]; stop {
			return
		}
		dst = append(dst, tok)
	}
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			if unicode.ToLower(r) != r {
				fold = true
			}
			continue
		}
		emit(i)
	}
	emit(len(text))
	return dst
}
