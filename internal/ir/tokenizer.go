// Package ir is the local information-retrieval engine of a MINERVA peer:
// an in-memory inverted index with <term, docID, score> postings (the
// paper's Section 1.2 data model), TF·IDF scoring, top-k query execution
// in conjunctive and disjunctive modes, cross-peer result merging, and
// relative-recall measurement against a centralized reference index
// (Section 8.1's evaluation metric).
package ir

import (
	"strings"
	"unicode"
)

// stopwords is a minimal English stopword list; enough to keep synthetic
// and example text indexes from drowning in glue words.
var stopwords = map[string]struct{}{
	"a": {}, "an": {}, "and": {}, "are": {}, "as": {}, "at": {}, "be": {},
	"by": {}, "for": {}, "from": {}, "has": {}, "he": {}, "in": {}, "is": {},
	"it": {}, "its": {}, "of": {}, "on": {}, "or": {}, "that": {}, "the": {},
	"to": {}, "was": {}, "were": {}, "will": {}, "with": {},
}

// Tokenize splits free text into index terms: lower-cased maximal runs of
// letters and digits, with stopwords and single-character tokens dropped.
func Tokenize(text string) []string {
	var terms []string
	var sb strings.Builder
	flush := func() {
		if sb.Len() < 2 {
			sb.Reset()
			return
		}
		t := sb.String()
		sb.Reset()
		if _, stop := stopwords[t]; stop {
			return
		}
		terms = append(terms, t)
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			sb.WriteRune(unicode.ToLower(r))
			continue
		}
		flush()
	}
	flush()
	return terms
}
