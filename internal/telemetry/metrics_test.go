package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	if again := r.Counter("x"); again != c {
		t.Fatalf("Counter lookup did not return the cached instrument")
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewRegistry().Counter("x")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value = %d, want %d", got, workers*per)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", DefaultLatencyBounds)
	c.Add(5)
	c.Inc()
	g.Set(7)
	g.Add(1)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	r.Reset() // must not panic
}

func TestGauge(t *testing.T) {
	g := NewRegistry().Gauge("inflight")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("lat", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []int64{2, 2, 1} // ≤10: {1,10}; ≤100: {11,100}; +Inf: {1000}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 || s.Sum != 1122 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("count/sum/min/max = %d/%d/%d/%d", s.Count, s.Sum, s.Min, s.Max)
	}
	// rank 3 of {1,10,11,100,1000} is 11, which falls in the ≤100
	// bucket, so the estimate is that bucket's upper bound.
	if q := s.Quantile(0.5); q != 100 {
		t.Fatalf("p50 = %d, want 100", q)
	}
	if q := s.Quantile(0.99); q != s.Max {
		t.Fatalf("p99 = %d, want max %d", q, s.Max)
	}
	if m := s.Mean(); m != 1122.0/5 {
		t.Fatalf("mean = %v", m)
	}
}

func TestSnapshotMergeAndReset(t *testing.T) {
	a := NewRegistry()
	a.Counter("calls").Add(3)
	a.Gauge("depth").Set(2)
	a.Histogram("lat", []int64{10}).Observe(5)

	b := NewRegistry()
	b.Counter("calls").Add(4)
	b.Counter("errors").Add(1)
	b.Gauge("depth").Set(9)
	b.Histogram("lat", []int64{10}).Observe(50)

	m := a.Snapshot().Merge(b.Snapshot())
	if m.Counters["calls"] != 7 || m.Counters["errors"] != 1 {
		t.Fatalf("merged counters: %v", m.Counters)
	}
	if m.Gauges["depth"] != 9 {
		t.Fatalf("merged gauge = %d, want 9 (last writer wins)", m.Gauges["depth"])
	}
	h := m.Histograms["lat"]
	if h.Count != 2 || h.Sum != 55 || h.Min != 5 || h.Max != 50 {
		t.Fatalf("merged histogram: %+v", h)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Fatalf("merged buckets: %v", h.Counts)
	}

	a.Reset()
	s := a.Snapshot()
	if s.Counters["calls"] != 0 || s.Gauges["depth"] != 0 || s.Histograms["lat"].Count != 0 {
		t.Fatalf("reset left residue: %+v", s)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("transport.calls").Add(12)
	r.Histogram("transport.call_ms", []int64{1, 10}).Observe(4)
	raw, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, raw)
	}
	if back.Counters["transport.calls"] != 12 {
		t.Fatalf("round-trip lost counter: %s", raw)
	}
	if back.Histograms["transport.call_ms"].Count != 1 {
		t.Fatalf("round-trip lost histogram: %s", raw)
	}
}

// The CI telemetry-overhead smoke: the hot-path operations — enabled
// or disabled (nil) — must not allocate.
func TestHotPathDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", DefaultLatencyBounds)
	var nilC *Counter
	var nilH *Histogram
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Add", func() { c.Add(1) }},
		{"Counter.Add/nil", func() { nilC.Add(1) }},
		{"Gauge.Set", func() { g.Set(3) }},
		{"Histogram.Observe", func() { h.Observe(17) }},
		{"Histogram.Observe/nil", func() { nilH.Observe(17) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", tc.name, allocs)
		}
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkCounterAddDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("lat", DefaultLatencyBounds)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 1023))
	}
}
