package telemetry

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceTreeCanonical(t *testing.T) {
	tr := NewTrace("q0", "search")
	root := tr.Root()
	root.Set("terms", "a,b")
	fetch := root.Child("directory.fetch")
	fetch.SetInt("winners", 2)
	fetch.End()
	route := root.Child("route")
	iter := route.Child("iter")
	iter.Setf("peer", "p%d", 3)
	iter.Set("score", "0.500")
	route.End()
	root.End()

	want := strings.Join([]string{
		"trace q0",
		"  [0] search terms=a,b",
		"    [1] directory.fetch winners=2",
		"    [2] route",
		"      [3] iter peer=p3 score=0.500",
		"",
	}, "\n")
	if got := tr.Canonical(); got != want {
		t.Fatalf("Canonical mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// Canonical output must be identical across runs regardless of how
// long the operations took — timings live only in String().
func TestCanonicalExcludesTimings(t *testing.T) {
	build := func(sleep time.Duration) string {
		tr := NewTrace("q1", "op")
		c := tr.Root().Child("slow")
		time.Sleep(sleep)
		c.End()
		tr.Root().End()
		return tr.Canonical()
	}
	if a, b := build(0), build(2*time.Millisecond); a != b {
		t.Fatalf("canonical differs with timing:\n%s\nvs\n%s", a, b)
	}
	tr := NewTrace("q2", "op")
	tr.Root().SetDuration("spent", 3*time.Millisecond)
	tr.Root().End()
	if s := tr.String(); !strings.Contains(s, "(") || !strings.Contains(s, "spent=3ms") {
		t.Fatalf("String() should include durations, got %q", s)
	}
	if c := tr.Canonical(); strings.Contains(c, "spent") {
		t.Fatalf("Canonical() must omit SetDuration attrs, got %q", c)
	}
}

func TestSpanIDsSequentialInCreationOrder(t *testing.T) {
	tr := NewTrace("q", "root")
	a := tr.Root().Child("a")
	b := tr.Root().Child("b")
	c := a.Child("c")
	if a.id != 1 || b.id != 2 || c.id != 3 {
		t.Fatalf("ids = %d,%d,%d want 1,2,3", a.id, b.id, c.id)
	}
}

func TestNilTraceAndSpanNoOps(t *testing.T) {
	var tr *Trace
	if tr.Canonical() != "" || tr.String() != "" || tr.ID() != "" || tr.Root() != nil {
		t.Fatal("nil trace must render empty")
	}
	var s *Span
	if s.Child("x") != nil {
		t.Fatal("nil span Child must return nil")
	}
	s.Set("k", "v")
	s.Setf("k", "%d", 1)
	s.SetInt("k", 2)
	s.End() // must not panic
}

func TestContextCarriage(t *testing.T) {
	ctx := context.Background()
	if SpanFrom(ctx) != nil {
		t.Fatal("empty context should carry no span")
	}
	tr := NewTrace("q", "root")
	ctx = WithSpan(ctx, tr.Root())
	if got := SpanFrom(ctx); got != tr.Root() {
		t.Fatal("span lost in context round-trip")
	}
	// Nil spans flow through contexts too (disabled tracing).
	ctx2 := WithSpan(context.Background(), nil)
	if SpanFrom(ctx2) != nil {
		t.Fatal("nil span should stay nil through context")
	}
	child := SpanFrom(ctx2).Child("sub")
	if child != nil {
		t.Fatal("child of carried nil span should be nil")
	}
}

func TestConcurrentSpanCreationSafe(t *testing.T) {
	tr := NewTrace("q", "root")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			s := tr.Root().Child("worker")
			s.Set("k", "v")
			s.End()
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	tr.mu.Lock()
	n := len(tr.root.children)
	tr.mu.Unlock()
	if n != 8 {
		t.Fatalf("children = %d, want 8", n)
	}
}
