package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func TestHandlerMetricsJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("transport.calls").Add(5)
	h := Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if snap.Counters["transport.calls"] != 5 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	h := Handler(nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics on nil registry status = %d", rec.Code)
	}
}

func TestHandlerPprofIndex(t *testing.T) {
	h := Handler(NewRegistry())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/ status = %d", rec.Code)
	}
}
