// Package telemetry is the observability layer for IQN routing: a
// dependency-free metrics registry (sharded counters, gauges,
// fixed-bucket histograms with mergeable snapshots) plus structured
// per-query span tracing with deterministic IDs, cheap enough for hot
// paths and replayable byte-for-byte under the simulator.
//
// Everything is nil-tolerant by design: a nil *Registry hands out nil
// instruments, and every instrument method is a no-op on a nil
// receiver. Call sites therefore instrument unconditionally and the
// disabled path costs nothing — no branches on a config flag, no
// allocations (proven by ReportAllocs benchmarks in this package).
package telemetry

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// counterShards is the number of independent cells a Counter stripes
// its increments over. Must be a power of two.
const counterShards = 8

// counterShard is one cell, padded out to a cache line so concurrent
// writers on different shards never false-share.
type counterShard struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing (or at least add-only) metric.
// Add is lock-free and allocation-free: it picks a shard from the
// caller's stack address — goroutines on different stacks land on
// different cache lines with high probability — and does one atomic
// add. The zero value is ready to use; a nil Counter ignores all
// operations.
type Counter struct {
	shards [counterShards]counterShard
}

// shardIndex derives a shard from the address of a stack variable.
// Different goroutines have different stacks, so concurrent writers
// spread across shards; the same goroutine hits the same shard and
// keeps the cache line warm. The unsafe.Pointer → uintptr conversion
// direction is the legal one and does not let the pointer escape.
func shardIndex() int {
	var x byte
	return int(uintptr(unsafe.Pointer(&x)) >> 6 & (counterShards - 1))
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.shards[shardIndex()].v.Add(n)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards. No-op (zero) on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

func (c *Counter) reset() {
	for i := range c.shards {
		c.shards[i].v.Store(0)
	}
}

// Gauge is a point-in-time value (queue depth, in-flight requests).
// All operations are single atomics; a nil Gauge ignores everything.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets defined by sorted
// inclusive upper bounds, with an implicit +Inf bucket at the end, and
// tracks count/sum/min/max. Observe is lock-free and allocation-free
// (a linear walk over a handful of bounds plus one atomic add). A nil
// Histogram ignores all operations.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

// newHistogram builds a histogram over the given sorted upper bounds.
func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	h := &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
}

// snapshot captures the histogram state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	return s
}

// DefaultLatencyBounds are millisecond bucket upper bounds suited to
// RPC latencies from sub-millisecond in-process calls to multi-second
// stalls.
var DefaultLatencyBounds = []int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// DefaultSizeBounds are byte bucket upper bounds for message sizes.
var DefaultSizeBounds = []int64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

// Registry is a named collection of instruments. Instruments are
// created on first use and cached; lookup takes a mutex, so call sites
// should resolve instruments once at construction and hold the
// pointers. A nil *Registry hands out nil instruments, making the
// disabled path free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls reuse the existing
// instrument regardless of bounds). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot captures every instrument's current value. Safe to call
// concurrently with writers (values are read atomically, though the
// snapshot as a whole is not a single atomic cut). A nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Reset zeroes every instrument in place (pointers held by call sites
// stay valid). No-op on a nil registry.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.Set(0)
	}
	for _, h := range r.histograms {
		h.reset()
	}
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	// Bounds are the inclusive bucket upper bounds; Counts has one more
	// entry than Bounds, the last being the +Inf bucket.
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Min    int64   `json:"min,omitempty"`
	Max    int64   `json:"max,omitempty"`
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) from the bucket
// counts: it finds the bucket holding the q-th observation and returns
// that bucket's upper bound (Max for the +Inf bucket). Returns 0 when
// empty.
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.Counts {
		seen += c
		if seen >= rank {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Max
		}
	}
	return h.Max
}

// Mean returns the average observed value, 0 when empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// merge folds other into a copy of h. Bounds must match (same
// instrument captured on different registries); mismatched shapes keep
// h's buckets and only fold the scalar totals.
func (h HistogramSnapshot) merge(other HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Bounds: append([]int64(nil), h.Bounds...),
		Counts: append([]int64(nil), h.Counts...),
		Count:  h.Count + other.Count,
		Sum:    h.Sum + other.Sum,
	}
	if len(other.Counts) == len(out.Counts) {
		for i, c := range other.Counts {
			out.Counts[i] += c
		}
	}
	switch {
	case h.Count == 0:
		out.Min, out.Max = other.Min, other.Max
	case other.Count == 0:
		out.Min, out.Max = h.Min, h.Max
	default:
		out.Min = min(h.Min, other.Min)
		out.Max = max(h.Max, other.Max)
	}
	return out
}

// Snapshot is a frozen, mergeable view of a registry, JSON-encodable
// for the introspection endpoint and for bench artifacts.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Merge returns the union of two snapshots: counters and histogram
// totals add, gauges take the other side's value when present (last
// writer wins, matching "most recent point-in-time reading").
func (s Snapshot) Merge(other Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range other.Counters {
		out.Counters[k] += v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range other.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = v
	}
	for k, v := range other.Histograms {
		if prev, ok := out.Histograms[k]; ok {
			out.Histograms[k] = prev.merge(v)
		} else {
			out.Histograms[k] = v
		}
	}
	return out
}

// JSON renders the snapshot as indented JSON with sorted keys (the
// encoding/json map behavior), suitable for the introspection endpoint
// and golden comparisons.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
