package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// Handler returns the live introspection endpoint: GET /metrics serves
// the registry snapshot as indented JSON, and /debug/pprof/* serves
// the stdlib profiler (CPU, heap, goroutine, ...). Mount it on an
// admin listener — it is read-only but not meant for the public edge.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		out, err := r.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(out)
		w.Write([]byte("\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
