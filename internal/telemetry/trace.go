package telemetry

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Trace is one query's span tree. Span IDs are assigned sequentially
// under the trace lock in creation order, so a trace built by
// deterministic code (spans for concurrent fan-out created before the
// goroutines launch) renders byte-identically across replays of the
// same fault schedule — the property the sim harness asserts.
//
// A nil *Trace, like a nil *Span, ignores every operation, so
// uninstrumented call paths carry no cost and no nil checks.
type Trace struct {
	mu     sync.Mutex
	id     string
	nextID int
	root   *Span
	clock  func() time.Time
}

// NewTrace starts a trace with a caller-supplied identifier (the sim
// uses the query index, live paths use any unique string) and a root
// span with the given name.
func NewTrace(id, rootName string) *Trace {
	t := &Trace{id: id, clock: time.Now}
	t.root = t.newSpan(rootName)
	return t
}

// ID returns the trace identifier ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span (nil on nil).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

func (t *Trace) newSpan(name string) *Span {
	s := &Span{trace: t, id: t.nextID, name: name, start: t.clock()}
	t.nextID++
	return s
}

// Span is one node of the trace tree: a named operation with ordered
// key=value annotations and child spans. All methods are safe for
// concurrent use (they serialize on the trace lock) and no-ops on a
// nil receiver.
type Span struct {
	trace    *Trace
	id       int
	name     string
	attrs    []spanAttr
	children []*Span
	start    time.Time
	dur      time.Duration
	ended    bool
}

type spanAttr struct {
	key, value string
	// timing marks wall-clock annotations (SetDuration): shown by
	// String(), omitted from Canonical() so replays stay byte-identical.
	timing bool
}

// Child creates and returns a sub-span. Returns nil on a nil receiver,
// so whole instrumented call chains collapse to no-ops when tracing is
// off.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	c := s.trace.newSpan(name)
	s.children = append(s.children, c)
	return c
}

// Set records a key=value annotation. Keys repeat in call order; the
// canonical rendering preserves that order.
func (s *Span) Set(key, value string) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	s.attrs = append(s.attrs, spanAttr{key: key, value: value})
}

// Setf is Set with fmt formatting of the value.
func (s *Span) Setf(key, format string, args ...any) {
	if s == nil {
		return
	}
	s.Set(key, fmt.Sprintf(format, args...))
}

// SetInt is Set with an integer value.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.Set(key, fmt.Sprintf("%d", v))
}

// SetDuration records a wall-clock annotation (e.g. budget spent in a
// phase). Like span durations, it appears in String() but never in
// Canonical(), so timing annotations cannot break replay comparisons.
func (s *Span) SetDuration(key string, d time.Duration) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	s.attrs = append(s.attrs, spanAttr{key, d.Round(time.Microsecond).String(), true})
}

// End stamps the span's wall-clock duration. Durations appear only in
// the String rendering, never in Canonical, so forgetting End never
// breaks replay comparisons.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	if !s.ended {
		s.dur = s.trace.clock().Sub(s.start)
		s.ended = true
	}
}

type spanCtxKey struct{}

// WithSpan returns a context carrying the span; instrumented layers
// retrieve it with SpanFrom and hang their children off it.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom extracts the current span from ctx, nil when absent (every
// Span method tolerates nil, so callers never check).
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// Canonical renders the trace deterministically: trace ID, then each
// span as an indented "[id] name key=value ..." line in tree order.
// Wall-clock timings are excluded, so two replays of the same fault
// schedule produce byte-identical output. Returns "" on nil.
func (t *Trace) Canonical() string { return t.render(false) }

// String renders the trace like Canonical but with per-span durations
// appended — the human-facing form. Returns "" on nil.
func (t *Trace) String() string { return t.render(true) }

func (t *Trace) render(timings bool) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s\n", t.id)
	t.root.render(&b, 1, timings)
	return b.String()
}

func (s *Span) render(b *strings.Builder, depth int, timings bool) {
	if s == nil {
		return
	}
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "[%d] %s", s.id, s.name)
	for _, a := range s.attrs {
		if a.timing && !timings {
			continue
		}
		fmt.Fprintf(b, " %s=%s", a.key, a.value)
	}
	if timings && s.ended {
		fmt.Fprintf(b, " (%s)", s.dur.Round(time.Microsecond))
	}
	b.WriteByte('\n')
	for _, c := range s.children {
		c.render(b, depth+1, timings)
	}
}
