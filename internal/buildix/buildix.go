// Package buildix is the out-of-core index construction pipeline: it
// builds the on-disk posting format (ir.DiskIndex) from a document
// stream whose total size can far exceed RAM.
//
// The build runs in three durable stages, the classic external-memory
// sort-merge arrangement:
//
//  1. spill — stream documents one at a time, tokenize, and accumulate
//     (term, doc, tf) triples in a bounded buffer. When the buffer
//     reaches the memory budget it is sorted by (term, docID) and
//     flushed as a flate-compressed run file. Per-document lengths go
//     to a side file for the length-normalized scoring models.
//  2. merge — k-way merge the sorted runs with a heap, limited to
//     MergeFanIn inputs per pass (extra passes write intermediate runs
//     in the same format). The final pass scores each term with the
//     exact in-memory scoring kernel (ir.ScoreTerm) and streams it into
//     an ir.DiskWriter, producing the single-file index.
//  3. synopsis — stream the merged index term by term and precompute
//     each term's set synopsis into the side file the directory
//     publisher reads, so a loaded index never re-derives synopses.
//
// Every stage records its completion in a manifest before the pipeline
// moves on, so a build killed at any point resumes at the last
// completed stage instead of starting over; the artifacts of a resumed
// build are byte-identical to an uninterrupted one. Peak memory is
// governed by MemBudget (the spill buffer) plus two O(corpus)-but-small
// tables that every external build keeps in core: the term dictionary
// and, during merge, the document-length table (~16 bytes per
// document).
package buildix

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"iqn/internal/ir"
	"iqn/internal/synopsis"
	"iqn/internal/telemetry"
)

// Doc is one input document. Terms takes precedence when set; otherwise
// Text is tokenized with ir.TokenizeInto.
type Doc struct {
	ID    uint64
	Text  string
	Terms []string
}

// Source yields the document stream, one Doc per call, ok=false at the
// end. It is consumed only by the spill stage — a resumed build whose
// spill already completed never calls it.
type Source func() (Doc, bool)

// ErrStopped reports that the build stopped deliberately after the
// stage named by Config.StopAfter. The manifest records the completed
// stage, so a subsequent Build resumes from there.
var ErrStopped = errors.New("buildix: stopped after requested stage")

// Stage names, in pipeline order.
const (
	StageSpill    = "spill"
	StageMerge    = "merge"
	StageSynopsis = "synopsis"
)

// Config parameterizes a build.
type Config struct {
	// Dir is the working directory: run files, the doc-length side
	// file, and the manifest live here. Created if missing. The final
	// index is also written here unless IndexPath overrides it.
	Dir string
	// IndexPath is the output index file. Default Dir/index.iqdx. The
	// synopsis side file is IndexPath+".syn".
	IndexPath string
	// Scoring selects the scoring model baked into the postings.
	Scoring ir.Scoring
	// MemBudget bounds the spill buffer, in bytes. When the buffered
	// postings (plus the term dictionary) exceed it, a sorted run is
	// flushed. Default 64 MiB; the floor is 1 MiB.
	MemBudget int64
	// MergeFanIn caps how many runs a single merge pass reads. More
	// runs than this trigger intermediate passes. Default 64.
	MergeFanIn int
	// Synopsis, when non-nil, enables the synopsis stage with this
	// scheme. Nil skips the stage (the manifest marks it done).
	Synopsis *synopsis.Config
	// Metrics receives buildix.* counters; nil disables telemetry.
	Metrics *telemetry.Registry
	// StopAfter names a stage after which Build returns ErrStopped —
	// a crash-injection hook for resume tests and operational
	// checkpointing. Empty runs the full pipeline.
	StopAfter string
}

func (c *Config) fillDefaults() {
	if c.IndexPath == "" {
		c.IndexPath = filepath.Join(c.Dir, "index.iqdx")
	}
	if c.MemBudget <= 0 {
		c.MemBudget = 64 << 20
	}
	if c.MemBudget < 1<<20 {
		c.MemBudget = 1 << 20
	}
	if c.MergeFanIn < 2 {
		c.MergeFanIn = 64
	}
}

// fingerprint identifies the artifact-affecting configuration. A
// manifest with a different fingerprint is discarded and the build
// starts over — resuming someone else's artifacts would silently
// produce a differently-scored index.
func (c *Config) fingerprint() string {
	syn := "none"
	if c.Synopsis != nil {
		syn = fmt.Sprintf("%d/%d/%d/%d",
			c.Synopsis.Kind, c.Synopsis.Bits, c.Synopsis.Seed, c.Synopsis.BloomHashes)
	}
	return fmt.Sprintf("buildix-v1|scoring=%d|syn=%s|out=%s", c.Scoring, syn, c.IndexPath)
}

// Result reports what a (possibly resumed) build did.
type Result struct {
	// IndexPath is the built index file.
	IndexPath string
	// NumDocs and TotalTokens are corpus-level statistics.
	NumDocs     int
	TotalTokens int64
	// Runs is the number of sorted runs the spill stage produced.
	Runs int
	// MergePasses counts merge passes, 1 when the fan-in sufficed.
	MergePasses int
	// SkippedStages lists stages found already complete in the
	// manifest and not re-run.
	SkippedStages []string
}

// manifest is the durable stage ledger, stored as Dir/MANIFEST.json.
type manifest struct {
	Fingerprint string          `json:"fingerprint"`
	Done        map[string]bool `json:"done"`
	Runs        []string        `json:"runs,omitempty"`
	NumDocs     int             `json:"num_docs"`
	TotalTokens int64           `json:"total_tokens"`
}

const manifestName = "MANIFEST.json"

func loadManifest(dir, fingerprint string) *manifest {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil
	}
	var m manifest
	if json.Unmarshal(data, &m) != nil || m.Fingerprint != fingerprint {
		return nil
	}
	if m.Done == nil {
		m.Done = map[string]bool{}
	}
	return &m
}

// save writes the manifest atomically and durably: a crash after save
// returns must still see the recorded stages on restart.
func (m *manifest) save(dir string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("buildix: manifest: %w", err)
	}
	path := filepath.Join(dir, manifestName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("buildix: manifest: %w", err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("buildix: manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("buildix: manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("buildix: manifest: %w", err)
	}
	return nil
}

// Build runs the pipeline, resuming from the manifest when one with a
// matching fingerprint exists. The source is consumed only when the
// spill stage actually runs. Returns ErrStopped (with valid partial
// Result) when Config.StopAfter cut the pipeline short.
func Build(cfg Config, source Source) (*Result, error) {
	if cfg.Dir == "" {
		return nil, errors.New("buildix: Config.Dir is required")
	}
	cfg.fillDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("buildix: %w", err)
	}

	fp := cfg.fingerprint()
	m := loadManifest(cfg.Dir, fp)
	if m == nil {
		// Fresh build (or stale fingerprint): drop leftover artifacts
		// so a partially-written run from a killed build can't leak in.
		if err := cleanDir(cfg.Dir); err != nil {
			return nil, err
		}
		m = &manifest{Fingerprint: fp, Done: map[string]bool{}}
		if err := m.save(cfg.Dir); err != nil {
			return nil, err
		}
	}

	res := &Result{IndexPath: cfg.IndexPath}
	skipped := cfg.Metrics.Counter("buildix.stages_skipped")

	// Stage 1: spill.
	if m.Done[StageSpill] {
		res.SkippedStages = append(res.SkippedStages, StageSpill)
		skipped.Inc()
	} else {
		if err := runSpill(&cfg, source, m); err != nil {
			return nil, err
		}
		m.Done[StageSpill] = true
		if err := m.save(cfg.Dir); err != nil {
			return nil, err
		}
	}
	res.Runs = len(m.Runs)
	res.NumDocs = m.NumDocs
	res.TotalTokens = m.TotalTokens
	if cfg.StopAfter == StageSpill {
		return res, ErrStopped
	}

	// Stage 2: merge.
	if m.Done[StageMerge] {
		res.SkippedStages = append(res.SkippedStages, StageMerge)
		skipped.Inc()
	} else {
		passes, err := runMerge(&cfg, m)
		if err != nil {
			return nil, err
		}
		res.MergePasses = passes
		m.Done[StageMerge] = true
		if err := m.save(cfg.Dir); err != nil {
			return nil, err
		}
	}
	if cfg.StopAfter == StageMerge {
		return res, ErrStopped
	}

	// Stage 3: synopsis.
	if m.Done[StageSynopsis] {
		res.SkippedStages = append(res.SkippedStages, StageSynopsis)
		skipped.Inc()
	} else {
		if cfg.Synopsis != nil {
			if err := runSynopsis(&cfg); err != nil {
				return nil, err
			}
		}
		m.Done[StageSynopsis] = true
		if err := m.save(cfg.Dir); err != nil {
			return nil, err
		}
	}
	if cfg.StopAfter == StageSynopsis {
		return res, ErrStopped
	}
	return res, nil
}

// cleanDir removes prior build artifacts from the working directory
// (runs, doc-length file, manifest temp files), keeping anything it
// does not recognize.
func cleanDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("buildix: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if name == manifestName || name == manifestName+".tmp" ||
			name == docLenName || isRunName(name) {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("buildix: clean: %w", err)
			}
		}
	}
	return nil
}
