package buildix

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"iqn/internal/ir"
)

// The spill stage streams documents and flushes sorted posting runs.
//
// Buffered postings are flat {termID, docID, tf} triples; the term
// dictionary (term string → dense ID) is the in-core vocabulary, the
// standard SPIMI arrangement. Memory accounting charges the triple
// storage plus the dictionary strings against Config.MemBudget; when
// the budget is hit after a document, the buffer is sorted by (term,
// docID) and written as one flate-compressed run.
//
// Run file layout (after decompression): per term group, in ascending
// term order —
//
//	uvarint len(term) | term | uvarint n | n × (uvarint docID-delta, uvarint tf)
//
// Doc IDs ascend within a group; the first is raw, the rest deltas.
// EOF ends the run. A document is never split across runs (the budget
// check runs between documents), but the same (term, doc) pair can
// appear in several runs when a document ID is fed twice — the merge
// sums term frequencies, matching ir.Index.AddDocument.
//
// Per-document lengths append to doclen.dat as (uvarint docID,
// uvarint length) pairs — including zero-length documents, which the
// in-memory index also counts as documents.

const (
	runPrefix  = "run-"
	runSuffix  = ".postings"
	docLenName = "doclen.dat"
)

func runName(i int) string { return fmt.Sprintf("%s%06d%s", runPrefix, i, runSuffix) }

func isRunName(name string) bool {
	return strings.HasPrefix(name, runPrefix) && strings.HasSuffix(name, runSuffix)
}

// postEntry is one buffered posting triple.
type postEntry struct {
	term uint32
	doc  uint64
	tf   uint32
}

// postEntrySize is the memory charge per buffered triple: the struct
// itself (padded to 16 bytes) plus slice overhead amortized away.
const postEntrySize = 16

func runSpill(cfg *Config, source Source, m *manifest) error {
	if source == nil {
		return fmt.Errorf("buildix: spill stage needs a document source")
	}
	docsCtr := cfg.Metrics.Counter("buildix.docs_indexed")
	tokensCtr := cfg.Metrics.Counter("buildix.tokens_indexed")
	runsCtr := cfg.Metrics.Counter("buildix.runs_spilled")
	runBytes := cfg.Metrics.Counter("buildix.run_bytes")

	lenPath := filepath.Join(cfg.Dir, docLenName)
	lenFile, err := os.Create(lenPath)
	if err != nil {
		return fmt.Errorf("buildix: spill: %w", err)
	}
	lenBuf := bufio.NewWriterSize(lenFile, 1<<20)

	dict := map[string]uint32{} // term → dense ID
	var terms []string          // ID → term
	var dictBytes int64
	var buf []postEntry
	var scratch []string // TokenizeInto reuse
	tfCount := map[uint32]uint32{}
	var runs []string
	var numDocs int
	var totalTokens int64
	seenDocs := map[uint64]struct{}{}

	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		name := runName(len(runs))
		n, err := writeRun(filepath.Join(cfg.Dir, name), terms, buf)
		if err != nil {
			return err
		}
		runs = append(runs, name)
		runsCtr.Inc()
		runBytes.Add(n)
		buf = buf[:0]
		return nil
	}

	var lenScratch [2 * binary.MaxVarintLen64]byte
	for {
		doc, ok := source()
		if !ok {
			break
		}
		toks := doc.Terms
		if toks == nil {
			scratch = ir.TokenizeInto(scratch[:0], doc.Text)
			toks = scratch
		}
		// Per-document term frequencies.
		clear(tfCount)
		for _, t := range toks {
			id, ok := dict[t]
			if !ok {
				id = uint32(len(terms))
				// The token may alias the caller's text buffer; clone
				// before retaining it as a map key.
				t = strings.Clone(t)
				dict[t] = id
				terms = append(terms, t)
				dictBytes += int64(len(t)) + 48 // string + map entry overhead
			}
			tfCount[id]++
		}
		for id, tf := range tfCount {
			buf = append(buf, postEntry{term: id, doc: doc.ID, tf: tf})
		}
		// Record the document even when empty: the in-memory index
		// counts it (docLen entry of zero) and parity demands we do too.
		if _, dup := seenDocs[doc.ID]; !dup {
			seenDocs[doc.ID] = struct{}{}
			numDocs++
		}
		totalTokens += int64(len(toks))
		p := binary.PutUvarint(lenScratch[:], doc.ID)
		p += binary.PutUvarint(lenScratch[p:], uint64(len(toks)))
		if _, err := lenBuf.Write(lenScratch[:p]); err != nil {
			lenFile.Close()
			return fmt.Errorf("buildix: spill: %w", err)
		}
		docsCtr.Inc()
		tokensCtr.Add(int64(len(toks)))

		if int64(len(buf))*postEntrySize+dictBytes >= cfg.MemBudget {
			if err := flush(); err != nil {
				lenFile.Close()
				return err
			}
		}
	}
	if err := flush(); err != nil {
		lenFile.Close()
		return err
	}
	if err := lenBuf.Flush(); err != nil {
		lenFile.Close()
		return fmt.Errorf("buildix: spill: %w", err)
	}
	if err := lenFile.Sync(); err != nil {
		lenFile.Close()
		return fmt.Errorf("buildix: spill: %w", err)
	}
	if err := lenFile.Close(); err != nil {
		return fmt.Errorf("buildix: spill: %w", err)
	}

	m.Runs = runs
	m.NumDocs = numDocs
	m.TotalTokens = totalTokens
	return nil
}

// writeRun sorts the buffer by (term, docID) and writes one compressed
// run, returning the compressed byte count. Duplicate (term, doc)
// pairs within the buffer are merged here by summing tf.
func writeRun(path string, terms []string, buf []postEntry) (int64, error) {
	sort.Slice(buf, func(i, j int) bool {
		if buf[i].term != buf[j].term {
			return terms[buf[i].term] < terms[buf[j].term]
		}
		return buf[i].doc < buf[j].doc
	})
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("buildix: run: %w", err)
	}
	fail := func(err error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	fw, err := flate.NewWriter(bw, flate.BestSpeed)
	if err != nil {
		return fail(fmt.Errorf("buildix: run: %w", err))
	}

	var out []byte
	for i := 0; i < len(buf); {
		j := i
		for j < len(buf) && buf[j].term == buf[i].term {
			j++
		}
		group := buf[i:j]
		// Merge duplicate doc IDs (same doc fed twice before a flush).
		w := 0
		for r := 0; r < len(group); r++ {
			if w > 0 && group[w-1].doc == group[r].doc {
				group[w-1].tf += group[r].tf
				continue
			}
			group[w] = group[r]
			w++
		}
		group = group[:w]
		term := terms[group[0].term]
		out = binary.AppendUvarint(out[:0], uint64(len(term)))
		out = append(out, term...)
		out = binary.AppendUvarint(out, uint64(len(group)))
		prev := uint64(0)
		for k, e := range group {
			if k == 0 {
				out = binary.AppendUvarint(out, e.doc)
			} else {
				out = binary.AppendUvarint(out, e.doc-prev)
			}
			prev = e.doc
			out = binary.AppendUvarint(out, uint64(e.tf))
		}
		if _, err := fw.Write(out); err != nil {
			return fail(fmt.Errorf("buildix: run: %w", err))
		}
		i = j
	}
	if err := fw.Close(); err != nil {
		return fail(fmt.Errorf("buildix: run: %w", err))
	}
	if err := bw.Flush(); err != nil {
		return fail(fmt.Errorf("buildix: run: %w", err))
	}
	st, err := f.Stat()
	if err != nil {
		return fail(fmt.Errorf("buildix: run: %w", err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("buildix: run: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("buildix: run: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("buildix: run: %w", err)
	}
	return st.Size(), nil
}

// readDocLens loads the doc-length side file, summing repeated IDs
// (a document fed twice accumulates length, as in the in-memory index).
func readDocLens(path string) (map[uint64]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("buildix: doc lengths: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	lens := map[uint64]int{}
	for {
		id, err := binary.ReadUvarint(br)
		if err != nil {
			break
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("buildix: doc lengths truncated: %w", err)
		}
		lens[id] += int(n)
	}
	return lens, nil
}
