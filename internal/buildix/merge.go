package buildix

import (
	"bufio"
	"compress/flate"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"iqn/internal/ir"
)

// The merge stage k-way merges the sorted runs into the final on-disk
// index. Runs hold raw (term, doc, tf) triples; scoring happens here,
// once per term, with the same ir.ScoreTerm kernel the in-memory index
// uses — so disk-built scores are bit-identical to an in-memory build
// over the same documents.
//
// When the spill produced more runs than Config.MergeFanIn, extra
// passes first merge groups of runs into intermediate runs of the same
// format; only the final pass scores and writes the index.

// runEntry is one (docID, tf) posting inside a term group.
type runEntry struct {
	doc uint64
	tf  uint32
}

// runReader sequentially decodes one run file, group by group.
type runReader struct {
	f    *os.File
	br   io.ByteReader
	term string     // current group's term
	ents []runEntry // current group's postings
	done bool
}

func openRun(path string) (*runReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("buildix: merge: %w", err)
	}
	r := &runReader{
		f:  f,
		br: bufio.NewReaderSize(flate.NewReader(bufio.NewReaderSize(f, 1<<20)), 1<<16),
	}
	if err := r.next(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// next advances to the following term group; sets done at EOF.
func (r *runReader) next() error {
	tl, err := binary.ReadUvarint(r.br)
	if err == io.EOF {
		r.done = true
		return nil
	}
	if err != nil {
		return fmt.Errorf("buildix: run read: %w", err)
	}
	name := make([]byte, tl)
	if _, err := io.ReadFull(r.br.(io.Reader), name); err != nil {
		return fmt.Errorf("buildix: run read: %w", err)
	}
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fmt.Errorf("buildix: run read: %w", err)
	}
	r.term = string(name)
	r.ents = r.ents[:0]
	var doc uint64
	for i := uint64(0); i < n; i++ {
		d, err := binary.ReadUvarint(r.br)
		if err != nil {
			return fmt.Errorf("buildix: run read: %w", err)
		}
		if i == 0 {
			doc = d
		} else {
			doc += d
		}
		tf, err := binary.ReadUvarint(r.br)
		if err != nil {
			return fmt.Errorf("buildix: run read: %w", err)
		}
		r.ents = append(r.ents, runEntry{doc: doc, tf: uint32(tf)})
	}
	return nil
}

func (r *runReader) close() { r.f.Close() }

// runHeap orders readers by their current term (ties broken by reader
// index for determinism).
type runHeap struct {
	rs  []*runReader
	idx []int
}

func (h *runHeap) Len() int { return len(h.rs) }
func (h *runHeap) Less(i, j int) bool {
	if h.rs[i].term != h.rs[j].term {
		return h.rs[i].term < h.rs[j].term
	}
	return h.idx[i] < h.idx[j]
}
func (h *runHeap) Swap(i, j int) {
	h.rs[i], h.rs[j] = h.rs[j], h.rs[i]
	h.idx[i], h.idx[j] = h.idx[j], h.idx[i]
}
func (h *runHeap) Push(x any) { panic("unused") }
func (h *runHeap) Pop() any {
	n := len(h.rs) - 1
	r := h.rs[n]
	h.rs = h.rs[:n]
	h.idx = h.idx[:n]
	return r
}

// mergeGroups merges the given runs, invoking emit once per distinct
// term in ascending order with the term's postings sorted by docID and
// duplicate doc IDs summed.
func mergeGroups(paths []string, emit func(term string, ents []runEntry) error) error {
	h := &runHeap{}
	defer func() {
		for _, r := range h.rs {
			r.close()
		}
	}()
	for i, p := range paths {
		r, err := openRun(p)
		if err != nil {
			return err
		}
		if r.done {
			r.close()
			continue
		}
		h.rs = append(h.rs, r)
		h.idx = append(h.idx, i)
	}
	heap.Init(h)

	var merged []runEntry
	for h.Len() > 0 {
		term := h.rs[0].term
		merged = merged[:0]
		// Pull every reader currently positioned at this term.
		for h.Len() > 0 && h.rs[0].term == term {
			r := h.rs[0]
			merged = append(merged, r.ents...)
			if err := r.next(); err != nil {
				return err
			}
			if r.done {
				r.close()
				heap.Pop(h)
			} else {
				heap.Fix(h, 0)
			}
		}
		// Each run's group is sorted by docID; with several runs a
		// plain sort keeps it simple (groups are one term's postings).
		sort.Slice(merged, func(i, j int) bool { return merged[i].doc < merged[j].doc })
		w := 0
		for r := 0; r < len(merged); r++ {
			if w > 0 && merged[w-1].doc == merged[r].doc {
				merged[w-1].tf += merged[r].tf
				continue
			}
			merged[w] = merged[r]
			w++
		}
		if err := emit(term, merged[:w]); err != nil {
			return err
		}
	}
	return nil
}

// writeIntermediateRun streams merged groups back into run format.
func writeIntermediateRun(path string, paths []string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("buildix: merge pass: %w", err)
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	fw, err := flate.NewWriter(bw, flate.BestSpeed)
	if err != nil {
		return fail(fmt.Errorf("buildix: merge pass: %w", err))
	}
	var out []byte
	err = mergeGroups(paths, func(term string, ents []runEntry) error {
		out = binary.AppendUvarint(out[:0], uint64(len(term)))
		out = append(out, term...)
		out = binary.AppendUvarint(out, uint64(len(ents)))
		prev := uint64(0)
		for k, e := range ents {
			if k == 0 {
				out = binary.AppendUvarint(out, e.doc)
			} else {
				out = binary.AppendUvarint(out, e.doc-prev)
			}
			prev = e.doc
			out = binary.AppendUvarint(out, uint64(e.tf))
		}
		_, werr := fw.Write(out)
		return werr
	})
	if err != nil {
		return fail(err)
	}
	if err := fw.Close(); err != nil {
		return fail(fmt.Errorf("buildix: merge pass: %w", err))
	}
	if err := bw.Flush(); err != nil {
		return fail(fmt.Errorf("buildix: merge pass: %w", err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("buildix: merge pass: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("buildix: merge pass: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("buildix: merge pass: %w", err)
	}
	return nil
}

// runMerge reduces the spill runs to the final index, multi-pass when
// the run count exceeds the fan-in. Returns the number of passes.
func runMerge(cfg *Config, m *manifest) (int, error) {
	termsCtr := cfg.Metrics.Counter("buildix.terms_written")
	passesCtr := cfg.Metrics.Counter("buildix.merge_passes")

	paths := make([]string, len(m.Runs))
	for i, name := range m.Runs {
		paths[i] = filepath.Join(cfg.Dir, name)
	}

	// Reduction passes: collapse groups of MergeFanIn runs until one
	// pass can read everything. Intermediate runs are temporary — a
	// crash here restarts the merge stage from the recorded spill runs.
	passes := 1
	gen := 0
	for len(paths) > cfg.MergeFanIn {
		var nextPaths []string
		for i := 0; i < len(paths); i += cfg.MergeFanIn {
			j := i + cfg.MergeFanIn
			if j > len(paths) {
				j = len(paths)
			}
			out := filepath.Join(cfg.Dir, fmt.Sprintf("pass%d-%06d%s", gen, len(nextPaths), runSuffix))
			if err := writeIntermediateRun(out, paths[i:j]); err != nil {
				return 0, err
			}
			nextPaths = append(nextPaths, out)
		}
		// Intermediate inputs of this pass are no longer needed.
		if gen > 0 {
			for _, p := range paths {
				os.Remove(p)
			}
		}
		paths = nextPaths
		gen++
		passes++
		passesCtr.Inc()
	}

	lens, err := readDocLens(filepath.Join(cfg.Dir, docLenName))
	if err != nil {
		return 0, err
	}
	stats := ir.CorpusStats{
		NumDocs:     len(lens),
		TotalTokens: 0,
		DocLen:      func(docID uint64) int { return lens[docID] },
	}
	docIDs := make([]uint64, 0, len(lens))
	for id, n := range lens {
		stats.TotalTokens += int64(n)
		docIDs = append(docIDs, id)
	}

	w, err := ir.NewDiskWriter(cfg.IndexPath, cfg.Scoring)
	if err != nil {
		return 0, err
	}
	var entries []ir.DocTF
	err = mergeGroups(paths, func(term string, ents []runEntry) error {
		entries = entries[:0]
		for _, e := range ents {
			entries = append(entries, ir.DocTF{DocID: e.doc, TF: int(e.tf)})
		}
		termsCtr.Inc()
		return w.AddTerm(term, ir.ScoreTerm(cfg.Scoring, stats, entries))
	})
	if err != nil {
		w.Close()
		os.Remove(cfg.IndexPath + ".tmp")
		return 0, err
	}
	w.AddDocs(docIDs)
	if err := w.Close(); err != nil {
		return 0, err
	}
	passesCtr.Inc()
	// Drop leftover intermediates from the last reduction generation.
	if gen > 0 {
		for _, p := range paths {
			os.Remove(p)
		}
	}
	return passes, nil
}

// runSynopsis streams the merged index and precomputes one synopsis
// per term into the side file the directory publisher consumes.
func runSynopsis(cfg *Config) error {
	synCtr := cfg.Metrics.Counter("buildix.synopses_built")
	d, err := ir.OpenDisk(cfg.IndexPath)
	if err != nil {
		return err
	}
	defer d.Close()
	sw, err := ir.NewSynopsisWriter(cfg.IndexPath+".syn",
		int(cfg.Synopsis.Kind), cfg.Synopsis.Bits, cfg.Synopsis.Seed)
	if err != nil {
		return err
	}
	for _, term := range d.Terms() {
		set := cfg.Synopsis.FromIDs(d.DocIDs(term))
		data, err := set.MarshalBinary()
		if err != nil {
			sw.Close()
			os.Remove(cfg.IndexPath + ".syn.tmp")
			return fmt.Errorf("buildix: synopsis for %q: %w", term, err)
		}
		if err := sw.AddTerm(term, data); err != nil {
			sw.Close()
			os.Remove(cfg.IndexPath + ".syn.tmp")
			return err
		}
		synCtr.Inc()
	}
	return sw.Close()
}
