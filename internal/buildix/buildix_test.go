package buildix

import (
	"errors"
	"os"
	"reflect"
	"testing"

	"iqn/internal/dataset"
	"iqn/internal/ir"
	"iqn/internal/synopsis"
	"iqn/internal/telemetry"
)

// corpusSource adapts a generated corpus to a Source.
func corpusSource(c *dataset.Corpus) Source {
	i := 0
	return func() (Doc, bool) {
		if i >= len(c.Docs) {
			return Doc{}, false
		}
		d := c.Docs[i]
		i++
		return Doc{ID: d.ID, Terms: d.Terms}, true
	}
}

// memIndex builds the reference in-memory index for a corpus.
func memIndex(c *dataset.Corpus, scoring ir.Scoring) *ir.Index {
	x := ir.NewIndex()
	x.SetScoring(scoring)
	for _, d := range c.Docs {
		x.AddDocument(d.ID, d.Terms)
	}
	x.Finalize()
	return x
}

// assertSearcherParity checks every Searcher method agrees between the
// disk-built and in-memory indexes, bit for bit.
func assertSearcherParity(t *testing.T, disk *ir.DiskIndex, mem *ir.Index, c *dataset.Corpus) {
	t.Helper()
	if disk.NumDocs() != mem.NumDocs() || disk.TermSpaceSize() != mem.TermSpaceSize() ||
		disk.MaxDocFreq() != mem.MaxDocFreq() || disk.Scoring() != mem.Scoring() {
		t.Fatalf("shape mismatch: docs %d/%d terms %d/%d maxdf %d/%d",
			disk.NumDocs(), mem.NumDocs(), disk.TermSpaceSize(), mem.TermSpaceSize(),
			disk.MaxDocFreq(), mem.MaxDocFreq())
	}
	for _, term := range disk.Terms() {
		if !reflect.DeepEqual(disk.Postings(term), mem.Postings(term)) {
			t.Fatalf("postings differ for %q", term)
		}
		if disk.MaxScore(term) != mem.MaxScore(term) || disk.AvgScore(term) != mem.AvgScore(term) {
			t.Fatalf("summary stats differ for %q", term)
		}
	}
	queries := dataset.GenerateQueries(c, dataset.QueryConfig{Count: 5, Seed: 99})
	for _, q := range queries {
		for _, mode := range []ir.Mode{ir.Disjunctive, ir.Conjunctive} {
			want := mem.Search(q.Terms, 10, mode)
			have := disk.Search(q.Terms, 10, mode)
			if !reflect.DeepEqual(want, have) {
				t.Fatalf("query %v (%v) differs", q.Terms, mode)
			}
		}
	}
}

func TestBuildParityAllScoringModels(t *testing.T) {
	corpus := dataset.Generate(dataset.CorpusConfig{NumDocs: 600, Seed: 21})
	for _, scoring := range []ir.Scoring{ir.ScoringTFIDF, ir.ScoringBM25, ir.ScoringLM} {
		t.Run(scoring.String(), func(t *testing.T) {
			dir := t.TempDir()
			res, err := Build(Config{Dir: dir, Scoring: scoring}, corpusSource(corpus))
			if err != nil {
				t.Fatal(err)
			}
			if res.NumDocs != len(corpus.Docs) {
				t.Fatalf("NumDocs = %d, want %d", res.NumDocs, len(corpus.Docs))
			}
			disk, err := ir.OpenDisk(res.IndexPath)
			if err != nil {
				t.Fatal(err)
			}
			defer disk.Close()
			assertSearcherParity(t, disk, memIndex(corpus, scoring), corpus)
		})
	}
}

func TestBuildSpillsUnderBudget(t *testing.T) {
	// A tiny budget forces many runs; the result must still be exact.
	corpus := dataset.Generate(dataset.CorpusConfig{NumDocs: 2000, Seed: 5})
	reg := telemetry.NewRegistry()
	dir := t.TempDir()
	res, err := Build(Config{
		Dir:       dir,
		Scoring:   ir.ScoringBM25,
		MemBudget: 1 << 20, // floor: 1 MiB
		Metrics:   reg,
	}, corpusSource(corpus))
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs < 2 {
		t.Fatalf("budget produced %d runs, want several", res.Runs)
	}
	if got := reg.Counter("buildix.runs_spilled").Value(); got != int64(res.Runs) {
		t.Fatalf("runs_spilled counter = %d, want %d", got, res.Runs)
	}
	if got := reg.Counter("buildix.docs_indexed").Value(); got != int64(len(corpus.Docs)) {
		t.Fatalf("docs_indexed counter = %d, want %d", got, len(corpus.Docs))
	}
	disk, err := ir.OpenDisk(res.IndexPath)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	assertSearcherParity(t, disk, memIndex(corpus, ir.ScoringBM25), corpus)
}

func TestBuildMultiPassMerge(t *testing.T) {
	// Fan-in 2 over many runs forces reduction passes.
	corpus := dataset.Generate(dataset.CorpusConfig{NumDocs: 2500, Seed: 13})
	res, err := Build(Config{
		Dir:        t.TempDir(),
		Scoring:    ir.ScoringTFIDF,
		MemBudget:  1 << 20,
		MergeFanIn: 2,
	}, corpusSource(corpus))
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs <= 2 {
		t.Fatalf("corpus too small to exercise multi-pass merge: %d runs", res.Runs)
	}
	if res.MergePasses < 2 {
		t.Fatalf("%d runs with fan-in 2 merged in %d passes", res.Runs, res.MergePasses)
	}
	disk, err := ir.OpenDisk(res.IndexPath)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	assertSearcherParity(t, disk, memIndex(corpus, ir.ScoringTFIDF), corpus)
}

func TestBuildTokenizesText(t *testing.T) {
	dir := t.TempDir()
	docs := []Doc{
		{ID: 1, Text: "Forest FIRE safety"},
		{ID: 2, Text: "forest pest control"},
		{ID: 3, Text: ""}, // empty doc still counts
	}
	i := 0
	src := func() (Doc, bool) {
		if i >= len(docs) {
			return Doc{}, false
		}
		d := docs[i]
		i++
		return d, true
	}
	res, err := Build(Config{Dir: dir, Scoring: ir.ScoringTFIDF}, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumDocs != 3 {
		t.Fatalf("NumDocs = %d, want 3 (empty doc must count)", res.NumDocs)
	}
	disk, err := ir.OpenDisk(res.IndexPath)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	mem := ir.NewIndex()
	for _, d := range docs {
		mem.AddText(d.ID, d.Text)
	}
	mem.Finalize()
	if disk.NumDocs() != mem.NumDocs() || disk.DocFreq("forest") != 2 {
		t.Fatalf("tokenized build wrong: docs=%d df(forest)=%d", disk.NumDocs(), disk.DocFreq("forest"))
	}
	got := disk.Search([]string{"forest", "fire"}, 5, ir.Disjunctive)
	want := mem.Search([]string{"forest", "fire"}, 5, ir.Disjunctive)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("text query differs: %v vs %v", got, want)
	}
}

func TestBuildDuplicateDocIDsSumTF(t *testing.T) {
	// Feeding the same doc ID twice accumulates tf, like AddDocument.
	mk := func() Source {
		docs := []Doc{
			{ID: 1, Terms: []string{"alpha", "beta"}},
			{ID: 1, Terms: []string{"alpha", "gamma"}},
			{ID: 2, Terms: []string{"beta"}},
		}
		i := 0
		return func() (Doc, bool) {
			if i >= len(docs) {
				return Doc{}, false
			}
			d := docs[i]
			i++
			return d, true
		}
	}
	res, err := Build(Config{Dir: t.TempDir(), Scoring: ir.ScoringBM25}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumDocs != 2 {
		t.Fatalf("NumDocs = %d, want 2 (duplicate IDs collapse)", res.NumDocs)
	}
	disk, err := ir.OpenDisk(res.IndexPath)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	mem := ir.NewIndex()
	mem.SetScoring(ir.ScoringBM25)
	mem.AddDocument(1, []string{"alpha", "beta"})
	mem.AddDocument(1, []string{"alpha", "gamma"})
	mem.AddDocument(2, []string{"beta"})
	mem.Finalize()
	for _, term := range []string{"alpha", "beta", "gamma"} {
		if !reflect.DeepEqual(disk.Postings(term), mem.Postings(term)) {
			t.Fatalf("postings differ for %q: %v vs %v", term, disk.Postings(term), mem.Postings(term))
		}
	}
}

// TestBuildResumesAfterKill kills the pipeline after each stage in
// turn, resumes, and asserts the final artifacts are byte-identical to
// an uninterrupted build.
func TestBuildResumesAfterKill(t *testing.T) {
	corpus := dataset.Generate(dataset.CorpusConfig{NumDocs: 350, Seed: 31})
	scfg := &synopsis.Config{Kind: synopsis.KindMIPs, Bits: 512, Seed: 7}

	// Reference: uninterrupted build.
	refDir := t.TempDir()
	refRes, err := Build(Config{Dir: refDir, Scoring: ir.ScoringLM, MemBudget: 1 << 20, Synopsis: scfg},
		corpusSource(corpus))
	if err != nil {
		t.Fatal(err)
	}
	refIndex, err := os.ReadFile(refRes.IndexPath)
	if err != nil {
		t.Fatal(err)
	}
	refSyn, err := os.ReadFile(refRes.IndexPath + ".syn")
	if err != nil {
		t.Fatal(err)
	}

	for _, killAfter := range []string{StageSpill, StageMerge, StageSynopsis} {
		t.Run("kill-after-"+killAfter, func(t *testing.T) {
			dir := t.TempDir()
			cfg := Config{Dir: dir, Scoring: ir.ScoringLM, MemBudget: 1 << 20,
				Synopsis: scfg, StopAfter: killAfter}
			_, err := Build(cfg, corpusSource(corpus))
			if !errors.Is(err, ErrStopped) {
				t.Fatalf("expected ErrStopped, got %v", err)
			}
			// Resume. The source is exhausted-on-purpose when spill is
			// done: a nil-yielding source proves it is not re-read.
			cfg.StopAfter = ""
			var src Source
			if killAfter == StageSpill || killAfter == StageMerge || killAfter == StageSynopsis {
				src = func() (Doc, bool) { return Doc{}, false }
			}
			res, err := Build(cfg, src)
			if err != nil {
				t.Fatal(err)
			}
			wantSkipped := map[string][]string{
				StageSpill:    {StageSpill},
				StageMerge:    {StageSpill, StageMerge},
				StageSynopsis: {StageSpill, StageMerge, StageSynopsis},
			}[killAfter]
			if !reflect.DeepEqual(res.SkippedStages, wantSkipped) {
				t.Fatalf("skipped %v, want %v", res.SkippedStages, wantSkipped)
			}
			gotIndex, err := os.ReadFile(res.IndexPath)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotIndex, refIndex) {
				t.Fatal("resumed index differs from uninterrupted build")
			}
			gotSyn, err := os.ReadFile(res.IndexPath + ".syn")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotSyn, refSyn) {
				t.Fatal("resumed synopsis side file differs from uninterrupted build")
			}
		})
	}
}

func TestBuildFingerprintMismatchRebuilds(t *testing.T) {
	corpus := dataset.Generate(dataset.CorpusConfig{NumDocs: 120, Seed: 3})
	dir := t.TempDir()
	if _, err := Build(Config{Dir: dir, Scoring: ir.ScoringTFIDF}, corpusSource(corpus)); err != nil {
		t.Fatal(err)
	}
	// Same dir, different scoring: the stale manifest must not be
	// trusted; the build reruns all stages (source consumed again).
	consumed := 0
	src := corpusSource(corpus)
	wrapped := func() (Doc, bool) {
		d, ok := src()
		if ok {
			consumed++
		}
		return d, ok
	}
	res, err := Build(Config{Dir: dir, Scoring: ir.ScoringBM25}, wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != len(corpus.Docs) {
		t.Fatalf("rebuild consumed %d docs, want %d", consumed, len(corpus.Docs))
	}
	if len(res.SkippedStages) != 0 {
		t.Fatalf("rebuild skipped stages: %v", res.SkippedStages)
	}
	disk, err := ir.OpenDisk(res.IndexPath)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	if disk.Scoring() != ir.ScoringBM25 {
		t.Fatalf("rebuilt index kept old scoring %v", disk.Scoring())
	}
}

func TestBuildSynopsisSideFile(t *testing.T) {
	corpus := dataset.Generate(dataset.CorpusConfig{NumDocs: 200, Seed: 17})
	scfg := &synopsis.Config{Kind: synopsis.KindMIPs, Bits: 1024, Seed: 99}
	res, err := Build(Config{Dir: t.TempDir(), Scoring: ir.ScoringTFIDF, Synopsis: scfg},
		corpusSource(corpus))
	if err != nil {
		t.Fatal(err)
	}
	disk, err := ir.OpenDisk(res.IndexPath)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	kind, bits, seed, ok := disk.SynopsisScheme()
	if !ok || kind != int(synopsis.KindMIPs) || bits != 1024 || seed != 99 {
		t.Fatalf("scheme = %d/%d/%d/%v", kind, bits, seed, ok)
	}
	// Every term's precomputed synopsis matches a fresh FromIDs build.
	for _, term := range disk.Terms()[:10] {
		data, ok := disk.PrebuiltSynopsis(term)
		if !ok {
			t.Fatalf("no prebuilt synopsis for %q", term)
		}
		want, err := scfg.FromIDs(disk.DocIDs(term)).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(data, want) {
			t.Fatalf("synopsis for %q differs from fresh build", term)
		}
	}
}

func TestBuildRequiresDir(t *testing.T) {
	if _, err := Build(Config{}, nil); err == nil {
		t.Fatal("Build without Dir succeeded")
	}
}

func TestBuildEmptySource(t *testing.T) {
	res, err := Build(Config{Dir: t.TempDir(), Scoring: ir.ScoringTFIDF},
		func() (Doc, bool) { return Doc{}, false })
	if err != nil {
		t.Fatal(err)
	}
	disk, err := ir.OpenDisk(res.IndexPath)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	if disk.NumDocs() != 0 || disk.TermSpaceSize() != 0 {
		t.Fatal("empty build not empty")
	}
}
