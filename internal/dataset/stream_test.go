package dataset

import (
	"reflect"
	"testing"
)

// TestStreamMatchesGenerate is the parity contract: the streaming
// generator must produce byte-identical documents, in order, to the
// batch Generate for the same configuration.
func TestStreamMatchesGenerate(t *testing.T) {
	cfgs := []CorpusConfig{
		{NumDocs: 500, Seed: 1},
		{NumDocs: 200, Seed: 42, VocabSize: 300, ZipfS: 1.5},
		{NumDocs: 100, Seed: 7, MinDocLen: 10, MaxDocLen: 10}, // fixed length: no Intn draws
		{NumDocs: 50, Seed: -3, MinDocLen: 5, MaxDocLen: 500},
	}
	for _, cfg := range cfgs {
		corpus := Generate(cfg)
		s := NewStream(cfg)
		if s.NumDocs() != len(corpus.Docs) {
			t.Fatalf("cfg %+v: NumDocs %d, want %d", cfg, s.NumDocs(), len(corpus.Docs))
		}
		if !reflect.DeepEqual(s.Vocab(), corpus.Vocab) {
			t.Fatalf("cfg %+v: vocabulary differs", cfg)
		}
		for i := range corpus.Docs {
			doc, ok := s.Next()
			if !ok {
				t.Fatalf("cfg %+v: stream exhausted at doc %d of %d", cfg, i, len(corpus.Docs))
			}
			if doc.ID != corpus.Docs[i].ID {
				t.Fatalf("cfg %+v: doc %d ID %d, want %d", cfg, i, doc.ID, corpus.Docs[i].ID)
			}
			if !reflect.DeepEqual(doc.Terms, corpus.Docs[i].Terms) {
				t.Fatalf("cfg %+v: doc %d terms differ (len %d vs %d)",
					cfg, i, len(doc.Terms), len(corpus.Docs[i].Terms))
			}
		}
		if _, ok := s.Next(); ok {
			t.Fatalf("cfg %+v: stream yields documents past NumDocs", cfg)
		}
		// Exhausted streams stay exhausted.
		if _, ok := s.Next(); ok {
			t.Fatalf("cfg %+v: exhausted stream revived", cfg)
		}
	}
}

func TestStreamOwnsTermSlices(t *testing.T) {
	s := NewStream(CorpusConfig{NumDocs: 2, Seed: 9})
	a, _ := s.Next()
	saved := append([]string(nil), a.Terms...)
	b, _ := s.Next()
	b.Terms[0] = "clobbered"
	if !reflect.DeepEqual(a.Terms, saved) {
		t.Fatal("documents share term-slice storage")
	}
}
