package dataset

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := CorpusConfig{NumDocs: 200, Seed: 42}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Docs) != 200 || len(b.Docs) != 200 {
		t.Fatalf("doc counts %d/%d, want 200", len(a.Docs), len(b.Docs))
	}
	for i := range a.Docs {
		if a.Docs[i].ID != b.Docs[i].ID || !reflect.DeepEqual(a.Docs[i].Terms, b.Docs[i].Terms) {
			t.Fatalf("doc %d differs between identically-seeded runs", i)
		}
	}
	c := Generate(CorpusConfig{NumDocs: 200, Seed: 43})
	same := true
	for i := range a.Docs {
		if !reflect.DeepEqual(a.Docs[i].Terms, c.Docs[i].Terms) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := CorpusConfig{NumDocs: 500, VocabSize: 300, MinDocLen: 10, MaxDocLen: 20, Seed: 1}
	c := Generate(cfg)
	if len(c.Vocab) != 300 {
		t.Fatalf("vocab size %d, want 300", len(c.Vocab))
	}
	ids := map[uint64]struct{}{}
	for _, d := range c.Docs {
		if len(d.Terms) < 10 || len(d.Terms) > 20 {
			t.Fatalf("doc %d length %d outside [10,20]", d.ID, len(d.Terms))
		}
		if _, dup := ids[d.ID]; dup {
			t.Fatalf("duplicate doc ID %d", d.ID)
		}
		ids[d.ID] = struct{}{}
	}
}

func TestGenerateZipfSkew(t *testing.T) {
	c := Generate(CorpusConfig{NumDocs: 2000, VocabSize: 5000, Seed: 7})
	df := c.DocumentFrequencies()
	// The most popular term must appear in far more documents than the
	// median term — the Zipf head.
	counts := make([]int, 0, len(df))
	for _, d := range df {
		counts = append(counts, d)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	if counts[0] < 10*counts[len(counts)/2] {
		t.Fatalf("head df %d not ≫ median df %d: vocabulary not Zipfian", counts[0], counts[len(counts)/2])
	}
}

func TestTermNameUnique(t *testing.T) {
	seen := map[string]int{}
	for i := 0; i < 20000; i++ {
		n := TermName(i)
		if prev, dup := seen[n]; dup {
			t.Fatalf("TermName collision: rank %d and %d both %q", prev, i, n)
		}
		seen[n] = i
	}
}

func TestSplitFragments(t *testing.T) {
	c := Generate(CorpusConfig{NumDocs: 103, Seed: 1})
	frags := SplitFragments(c, 10)
	if len(frags) != 10 {
		t.Fatalf("%d fragments, want 10", len(frags))
	}
	total := 0
	sizes := map[int]bool{}
	for _, f := range frags {
		total += len(f)
		sizes[len(f)] = true
	}
	if total != 103 {
		t.Fatalf("fragments cover %d docs, want 103", total)
	}
	if len(sizes) > 2 {
		t.Fatalf("fragment sizes %v differ by more than one", sizes)
	}
	// Disjointness.
	seen := map[uint64]struct{}{}
	for _, f := range frags {
		for _, d := range f {
			if _, dup := seen[d.ID]; dup {
				t.Fatalf("doc %d in two fragments", d.ID)
			}
			seen[d.ID] = struct{}{}
		}
	}
}

func TestSplitFragmentsPanics(t *testing.T) {
	c := Generate(CorpusConfig{NumDocs: 5, Seed: 1})
	for _, f := range []int{0, -1, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SplitFragments(%d) did not panic", f)
				}
			}()
			SplitFragments(c, f)
		}()
	}
}

func TestCombinations(t *testing.T) {
	got := Combinations(4, 2)
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Combinations(4,2) = %v, want %v", got, want)
	}
	if n := len(Combinations(6, 3)); n != 20 {
		t.Fatalf("(6 choose 3) = %d, want 20", n)
	}
	if n := len(Combinations(5, 0)); n != 1 {
		t.Fatalf("(5 choose 0) = %d combos, want 1 (the empty set)", n)
	}
	if n := len(Combinations(5, 5)); n != 1 {
		t.Fatalf("(5 choose 5) = %d, want 1", n)
	}
}

func TestAssignChooseS(t *testing.T) {
	// The paper's Figure 3 left setting: f=6, s=3 → 20 peers.
	c := Generate(CorpusConfig{NumDocs: 600, Seed: 3})
	cols := AssignChooseS(c, 6, 3)
	if len(cols) != 20 {
		t.Fatalf("%d collections, want 20", len(cols))
	}
	for _, col := range cols {
		if len(col.Docs) != 300 {
			t.Fatalf("collection %s has %d docs, want 300 (3 fragments of 100)", col.Name, len(col.Docs))
		}
	}
	// Two peers sharing 2 of 3 fragments overlap in exactly 200 docs.
	m := OverlapMatrix(cols)
	// cols[0] = {0,1,2}, cols[1] = {0,1,3} per lexicographic order.
	if m[0][1] != 200 {
		t.Fatalf("overlap(peers 0,1) = %d, want 200", m[0][1])
	}
	// cols[0] = {0,1,2} vs cols[19] = {3,4,5}: disjoint.
	if m[0][19] != 0 {
		t.Fatalf("overlap(peers 0,19) = %d, want 0", m[0][19])
	}
	// Every collection overlaps fully with itself.
	for i := range m {
		if m[i][i] != len(cols[i].Docs) {
			t.Fatalf("self overlap %d != size %d", m[i][i], len(cols[i].Docs))
		}
	}
}

func TestAssignSlidingWindow(t *testing.T) {
	// The paper's Figure 3 right setting: 100 fragments, r=10, offset=2
	// → 50 peers; consecutive peers share 8 fragments.
	c := Generate(CorpusConfig{NumDocs: 1000, Seed: 4})
	cols := AssignSlidingWindow(c, 100, 10, 2)
	if len(cols) != 50 {
		t.Fatalf("%d collections, want 50", len(cols))
	}
	for _, col := range cols {
		if len(col.Docs) != 100 {
			t.Fatalf("collection %s has %d docs, want 100 (10 fragments of 10)", col.Name, len(col.Docs))
		}
	}
	m := OverlapMatrix(cols)
	if m[0][1] != 80 {
		t.Fatalf("adjacent overlap = %d, want 80 (8 shared fragments of 10 docs)", m[0][1])
	}
	if m[0][2] != 60 {
		t.Fatalf("distance-2 overlap = %d, want 60", m[0][2])
	}
	if m[0][5] != 0 {
		t.Fatalf("distance-5 overlap = %d, want 0", m[0][5])
	}
}

func TestAssignSlidingWindowWraps(t *testing.T) {
	c := Generate(CorpusConfig{NumDocs: 100, Seed: 5})
	cols := AssignSlidingWindow(c, 10, 4, 2)
	// Peer 4 starts at fragment 8 and wraps to fragments {8,9,0,1}.
	last := cols[len(cols)-1]
	if len(last.Docs) != 40 {
		t.Fatalf("wrapped collection has %d docs, want 40", len(last.Docs))
	}
	m := OverlapMatrix([]Collection{cols[0], last})
	if m[0][1] != 20 {
		t.Fatalf("wrap overlap = %d, want 20 (fragments 0,1 shared)", m[0][1])
	}
}

func TestCollectionIDs(t *testing.T) {
	col := Collection{Name: "p", Docs: []Document{{ID: 3}, {ID: 9}}}
	if got := col.IDs(); !reflect.DeepEqual(got, []uint64{3, 9}) {
		t.Fatalf("IDs = %v", got)
	}
}

func TestGenerateQueries(t *testing.T) {
	c := Generate(CorpusConfig{NumDocs: 2000, Seed: 6})
	qs := GenerateQueries(c, QueryConfig{Count: 10, Seed: 6})
	if len(qs) != 10 {
		t.Fatalf("%d queries, want 10", len(qs))
	}
	df := c.DocumentFrequencies()
	n := float64(len(c.Docs))
	for _, q := range qs {
		if len(q.Terms) < 2 || len(q.Terms) > 3 {
			t.Fatalf("query %d has %d terms, want 2..3", q.ID, len(q.Terms))
		}
		seen := map[string]struct{}{}
		for _, term := range q.Terms {
			if _, dup := seen[term]; dup {
				t.Fatalf("query %d repeats term %q", q.ID, term)
			}
			seen[term] = struct{}{}
			frac := float64(df[term]) / n
			if frac < 0.01 || frac > 0.20 {
				t.Fatalf("query term %q df fraction %v outside mid band", term, frac)
			}
		}
	}
	// Determinism.
	qs2 := GenerateQueries(c, QueryConfig{Count: 10, Seed: 6})
	if !reflect.DeepEqual(qs, qs2) {
		t.Fatal("identically-seeded workloads differ")
	}
}

func TestGenerateQueriesDegenerateCorpus(t *testing.T) {
	// A corpus whose vocabulary has no mid-frequency band must still
	// yield a workload (fallback to full vocabulary).
	c := &Corpus{
		Docs:  []Document{{ID: 1, Terms: []string{"a"}}, {ID: 2, Terms: []string{"a"}}},
		Vocab: []string{"a"},
	}
	qs := GenerateQueries(c, QueryConfig{Count: 3, Seed: 1})
	if len(qs) != 3 {
		t.Fatalf("%d queries, want 3", len(qs))
	}
	for _, q := range qs {
		if len(q.Terms) == 0 {
			t.Fatal("empty query from degenerate corpus")
		}
	}
}

func TestFragmentCoverageProperty(t *testing.T) {
	f := func(nDocs uint8, nFrags uint8) bool {
		n := int(nDocs)%200 + 10
		fr := int(nFrags)%9 + 1
		c := Generate(CorpusConfig{NumDocs: n, Seed: int64(n * fr)})
		frags := SplitFragments(c, fr)
		total := 0
		for _, fs := range frags {
			total += len(fs)
		}
		return total == n && len(frags) == fr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
