package dataset

import (
	"math/rand"
	"sort"
)

// Query is a multi-keyword information need, the unit of the routing
// benchmark. The paper uses 10 short topic-distillation queries from the
// TREC 2003 Web Track ("forest fire", "pest safety control", …).
type Query struct {
	// ID numbers the query within its workload.
	ID int
	// Terms are the (distinct) keywords.
	Terms []string
}

// QueryConfig parameterizes the synthetic workload generator.
type QueryConfig struct {
	// Count is the number of queries (the paper uses 10).
	Count int
	// MinTerms and MaxTerms bound the keyword count per query
	// (default 2..3, matching the paper's examples).
	MinTerms, MaxTerms int
	// Seed drives the randomness.
	Seed int64
	// MinDF and MaxDF bound the document frequency of eligible terms as
	// fractions of the corpus size. Topic-distillation keywords are
	// mid-frequency: frequent enough to have results everywhere, rare
	// enough to be selective. Defaults 0.01 and 0.20.
	MinDF, MaxDF float64
}

func (q *QueryConfig) fillDefaults() {
	if q.Count <= 0 {
		q.Count = 10
	}
	if q.MinTerms <= 0 {
		q.MinTerms = 2
	}
	if q.MaxTerms < q.MinTerms {
		q.MaxTerms = q.MinTerms + 1
	}
	if q.MinDF <= 0 {
		q.MinDF = 0.01
	}
	if q.MaxDF <= q.MinDF {
		q.MaxDF = 0.20
	}
}

// GenerateQueries builds a seeded query workload over the corpus,
// sampling keywords from the mid-frequency band of the vocabulary.
func GenerateQueries(c *Corpus, cfg QueryConfig) []Query {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	df := c.DocumentFrequencies()
	n := float64(len(c.Docs))
	var eligible []string
	for t, d := range df {
		frac := float64(d) / n
		if frac >= cfg.MinDF && frac <= cfg.MaxDF {
			eligible = append(eligible, t)
		}
	}
	// Deterministic iteration order before shuffling.
	sort.Strings(eligible)
	if len(eligible) == 0 {
		// Degenerate corpora (tiny vocabularies) have no mid-band; fall
		// back to the full vocabulary so callers still get a workload.
		eligible = append(eligible, c.Vocab...)
		sort.Strings(eligible)
	}
	queries := make([]Query, cfg.Count)
	for i := range queries {
		k := cfg.MinTerms
		if cfg.MaxTerms > cfg.MinTerms {
			k += rng.Intn(cfg.MaxTerms - cfg.MinTerms + 1)
		}
		if k > len(eligible) {
			k = len(eligible)
		}
		terms := make([]string, 0, k)
		seen := make(map[string]struct{}, k)
		for len(terms) < k {
			t := eligible[rng.Intn(len(eligible))]
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			terms = append(terms, t)
		}
		sort.Strings(terms)
		queries[i] = Query{ID: i + 1, Terms: terms}
	}
	return queries
}
