// Package dataset generates the reproducible test collections and query
// workloads for the IQN experiments.
//
// The paper evaluates on the TREC 2003 GOV crawl (≈1.5 M documents) and 10
// topic-distillation queries. Neither is redistributable, so this package
// provides a seeded synthetic substitute that preserves the properties the
// routing experiments actually depend on:
//
//   - a Zipf-distributed vocabulary (popular terms appear in many
//     documents, the long tail in few), matching web text statistics;
//   - controlled inter-peer overlap via the paper's own two collection
//     assignment strategies — all (f choose s) fragment combinations, and
//     the sliding-window scheme (Section 8.1);
//   - short multi-keyword queries drawn from mid-frequency terms, the
//     selectivity profile of TREC topic-distillation topics.
//
// Everything is deterministic in the seeds, so experiments reproduce
// run-to-run and peer-to-peer.
package dataset

import (
	"fmt"
	"math/rand"
	"strings"
)

// Document is one indexable unit: a global ID (a URL fingerprint in the
// paper's setting) and its term sequence. Terms repeat according to their
// within-document frequency.
type Document struct {
	// ID is the globally unique document identifier. Two peers holding
	// the same document hold the same ID — the basis of overlap.
	ID uint64
	// Terms is the tokenized body.
	Terms []string
}

// Corpus is the full reference collection, the ground truth against which
// relative recall is measured.
type Corpus struct {
	// Docs holds every document exactly once, ordered by ID.
	Docs []Document
	// Vocab is the vocabulary actually used, indexed by term rank
	// (rank 0 = most popular).
	Vocab []string
}

// CorpusConfig parameterizes the synthetic corpus generator.
type CorpusConfig struct {
	// NumDocs is the number of documents to generate.
	NumDocs int
	// VocabSize is the number of distinct terms available. Defaults to
	// max(1000, NumDocs/10) when zero.
	VocabSize int
	// ZipfS is the Zipf skew parameter (> 1). Defaults to 1.2.
	ZipfS float64
	// MinDocLen and MaxDocLen bound the number of term occurrences per
	// document. Default 40..200.
	MinDocLen, MaxDocLen int
	// Seed drives all randomness.
	Seed int64
}

func (c *CorpusConfig) fillDefaults() {
	if c.VocabSize <= 0 {
		c.VocabSize = c.NumDocs / 10
		if c.VocabSize < 1000 {
			c.VocabSize = 1000
		}
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.MinDocLen <= 0 {
		c.MinDocLen = 40
	}
	if c.MaxDocLen < c.MinDocLen {
		c.MaxDocLen = c.MinDocLen + 160
	}
}

// syllables for synthetic but pronounceable term names, so examples and
// logs stay readable.
var syllables = []string{
	"ba", "ce", "di", "fo", "gu", "ha", "ki", "lo", "mu", "na",
	"pe", "qui", "ro", "su", "ta", "ve", "wi", "xo", "yu", "za",
	"bren", "cor", "dal", "fir", "gol", "hem", "jun", "kal", "lin", "mor",
}

// TermName returns the deterministic name of the term with the given
// popularity rank (0 = most popular). Names are distinct across ranks.
func TermName(rank int) string {
	var sb strings.Builder
	n := rank
	for i := 0; i < 3; i++ {
		sb.WriteString(syllables[n%len(syllables)])
		n /= len(syllables)
	}
	if n > 0 || true {
		// Suffix the rank to guarantee uniqueness regardless of syllable
		// collisions.
		fmt.Fprintf(&sb, "%d", rank)
	}
	return sb.String()
}

// Generate builds the corpus described by the configuration.
func Generate(cfg CorpusConfig) *Corpus {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.VocabSize-1))
	vocab := make([]string, cfg.VocabSize)
	for i := range vocab {
		vocab[i] = TermName(i)
	}
	docs := make([]Document, cfg.NumDocs)
	for i := range docs {
		length := cfg.MinDocLen
		if cfg.MaxDocLen > cfg.MinDocLen {
			length += rng.Intn(cfg.MaxDocLen - cfg.MinDocLen + 1)
		}
		terms := make([]string, length)
		for j := range terms {
			terms[j] = vocab[zipf.Uint64()]
		}
		// IDs are dense 1..NumDocs; synopsis mixers de-correlate them.
		docs[i] = Document{ID: uint64(i + 1), Terms: terms}
	}
	return &Corpus{Docs: docs, Vocab: vocab}
}

// DocumentFrequencies returns, for every term occurring in the corpus, the
// number of documents containing it.
func (c *Corpus) DocumentFrequencies() map[string]int {
	df := make(map[string]int, len(c.Vocab))
	for _, d := range c.Docs {
		seen := make(map[string]struct{}, len(d.Terms))
		for _, t := range d.Terms {
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			df[t]++
		}
	}
	return df
}

// Collection is the document set assigned to one peer.
type Collection struct {
	// Name identifies the peer the collection is destined for.
	Name string
	// Docs are the documents, each appearing once.
	Docs []Document
}

// IDs returns the document IDs of the collection.
func (c *Collection) IDs() []uint64 {
	ids := make([]uint64, len(c.Docs))
	for i, d := range c.Docs {
		ids[i] = d.ID
	}
	return ids
}
