package dataset

import "math/rand"

// Stream is a doc-at-a-time view of a synthetic corpus. It produces the
// exact same document sequence as Generate for the same configuration —
// byte-identical IDs and term slices — but holds only one document in
// memory at a time, so the out-of-core build pipeline can index corpora
// far larger than RAM.
//
// The equivalence hinges on consuming the shared RNG in exactly the
// order Generate does: rand.NewZipf draws from the same *rand.Rand as
// the length draws, so per document it must be one Intn for the length
// (only when MaxDocLen > MinDocLen) followed by one zipf.Uint64 per
// term occurrence. A parity test locks this in.
type Stream struct {
	cfg   CorpusConfig
	rng   *rand.Rand
	zipf  *rand.Zipf
	vocab []string
	next  int
}

// NewStream starts a streaming generator over the corpus described by
// the configuration. The vocabulary (one short string per term) is the
// only O(corpus) state it keeps, and it is ~VocabSize strings, not
// NumDocs documents.
func NewStream(cfg CorpusConfig) *Stream {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.VocabSize-1))
	vocab := make([]string, cfg.VocabSize)
	for i := range vocab {
		vocab[i] = TermName(i)
	}
	return &Stream{cfg: cfg, rng: rng, zipf: zipf, vocab: vocab}
}

// NumDocs reports how many documents the stream will produce in total.
func (s *Stream) NumDocs() int { return s.cfg.NumDocs }

// Vocab returns the vocabulary by popularity rank, same as Corpus.Vocab.
func (s *Stream) Vocab() []string { return s.vocab }

// Next generates the next document. The returned Terms slice is owned
// by the caller (a fresh allocation per call, exactly like Generate).
// ok is false once the stream is exhausted.
func (s *Stream) Next() (doc Document, ok bool) {
	if s.next >= s.cfg.NumDocs {
		return Document{}, false
	}
	length := s.cfg.MinDocLen
	if s.cfg.MaxDocLen > s.cfg.MinDocLen {
		length += s.rng.Intn(s.cfg.MaxDocLen - s.cfg.MinDocLen + 1)
	}
	terms := make([]string, length)
	for j := range terms {
		terms[j] = s.vocab[s.zipf.Uint64()]
	}
	s.next++
	return Document{ID: uint64(s.next), Terms: terms}, true
}
