package dataset

import "fmt"

// This file implements the paper's two collection-assignment strategies
// (Section 8.1). Both first split the corpus into disjoint fragments and
// then compose per-peer collections from fragments, which gives precise
// control over the degree of inter-peer overlap:
//
//   - ChooseS: split into f fragments and assign every s-subset of
//     fragments to one peer, yielding (f choose s) peers. With f=6, s=3
//     (the paper's Figure 3 left) this gives 20 peers where any two peers
//     share between 0 and 2 of their 3 fragments.
//   - SlidingWindow: split into many fragments; peer i receives r
//     consecutive fragments starting at i·offset (wrapping around), so
//     adjacent peers overlap in r−offset fragments. The paper's Figure 3
//     right uses 100 fragments, r=10, offset=2 → 50 peers.

// SplitFragments partitions the corpus documents into f equal contiguous
// fragments. Remainder documents go to the leading fragments, so sizes
// differ by at most one. It panics if f is not in [1, len(docs)].
func SplitFragments(c *Corpus, f int) [][]Document {
	if f < 1 || f > len(c.Docs) {
		panic(fmt.Sprintf("dataset: cannot split %d docs into %d fragments", len(c.Docs), f))
	}
	frags := make([][]Document, f)
	n := len(c.Docs)
	base, rem := n/f, n%f
	start := 0
	for i := range frags {
		size := base
		if i < rem {
			size++
		}
		frags[i] = c.Docs[start : start+size]
		start += size
	}
	return frags
}

// Combinations returns all k-subsets of {0,…,n−1} in lexicographic order.
// It panics for k < 0 or k > n.
func Combinations(n, k int) [][]int {
	if k < 0 || k > n {
		panic(fmt.Sprintf("dataset: combinations(%d,%d)", n, k))
	}
	var out [][]int
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		out = append(out, append([]int(nil), idx...))
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return out
}

// AssignChooseS splits the corpus into f fragments and builds one
// collection per s-subset of fragments, (f choose s) collections total.
func AssignChooseS(c *Corpus, f, s int) []Collection {
	frags := SplitFragments(c, f)
	combos := Combinations(f, s)
	cols := make([]Collection, len(combos))
	for i, combo := range combos {
		var docs []Document
		for _, fi := range combo {
			docs = append(docs, frags[fi]...)
		}
		cols[i] = Collection{Name: fmt.Sprintf("peer-c%02d", i), Docs: docs}
	}
	return cols
}

// AssignSlidingWindow splits the corpus into numFragments fragments and
// assigns peer i the r consecutive fragments starting at i·offset,
// wrapping around the fragment ring; peers are created until the window
// start would wrap past the origin (numFragments/offset peers). This is
// the paper's systematic-overlap strategy: consecutive peers share
// r−offset fragments.
func AssignSlidingWindow(c *Corpus, numFragments, r, offset int) []Collection {
	if r < 1 || r > numFragments {
		panic(fmt.Sprintf("dataset: sliding window r=%d of %d fragments", r, numFragments))
	}
	if offset < 1 {
		panic(fmt.Sprintf("dataset: sliding window offset=%d", offset))
	}
	frags := SplitFragments(c, numFragments)
	numPeers := numFragments / offset
	cols := make([]Collection, numPeers)
	for i := range cols {
		var docs []Document
		for j := 0; j < r; j++ {
			docs = append(docs, frags[(i*offset+j)%numFragments]...)
		}
		cols[i] = Collection{Name: fmt.Sprintf("peer-w%02d", i), Docs: docs}
	}
	return cols
}

// OverlapMatrix returns, for a set of collections, the pair-wise overlap
// |A∩B| computed exactly from document IDs — ground truth for validating
// synopsis estimates in tests and experiments.
func OverlapMatrix(cols []Collection) [][]int {
	sets := make([]map[uint64]struct{}, len(cols))
	for i, c := range cols {
		sets[i] = make(map[uint64]struct{}, len(c.Docs))
		for _, d := range c.Docs {
			sets[i][d.ID] = struct{}{}
		}
	}
	m := make([][]int, len(cols))
	for i := range m {
		m[i] = make([]int, len(cols))
		for j := range m[i] {
			small, large := sets[i], sets[j]
			if len(small) > len(large) {
				small, large = large, small
			}
			n := 0
			for id := range small {
				if _, ok := large[id]; ok {
					n++
				}
			}
			m[i][j] = n
		}
	}
	return m
}
