package core

import (
	"errors"

	"iqn/internal/synopsis"
)

// This file implements the per-peer synopsis aggregation of Section 6.2:
// combining a peer's term-specific synopses into one query-specific
// synopsis, by union for disjunctive queries and by intersection for
// conjunctive queries.

// combinePerPeer folds a candidate's per-term synopses into one synopsis
// plus a cardinality estimate for the combined set. Missing terms count
// as empty sets: for a disjunctive query they contribute nothing; for a
// conjunctive query they empty the whole combination (a peer lacking a
// term cannot hold conjunctive matches).
//
// The returned cardinality is an estimate: for disjunctive queries the
// sum of published list lengths is an upper bound that double-counts
// documents matching several terms, so the synopsis's own estimate is
// used when it is defined (unknown exact count), clamped by the upper
// bound. For conjunctive queries the combination synopsis has no sound
// cardinality, so the synopsis estimate is used directly.
//
// Hash sketches have no intersection; per the paper's Section 6.1 the
// crude-but-valid fallback is to use the union (a superset of the
// intersection), degrading accuracy but never correctness.
func combinePerPeer(c Candidate, q Query) (synopsis.Set, float64, error) {
	var acc synopsis.Set
	var cardUpper float64
	for _, t := range q.Terms {
		s := c.TermSynopses[t]
		if s == nil {
			if q.Type == Conjunctive {
				return nil, 0, nil // no conjunctive matches possible
			}
			continue
		}
		if card, ok := c.TermCardinalities[t]; ok {
			cardUpper += card
		} else {
			cardUpper += s.Cardinality()
		}
		if acc == nil {
			acc = s.Clone()
			continue
		}
		var err error
		var next synopsis.Set
		if q.Type == Conjunctive {
			next, err = intersectWithFallback(acc, s)
		} else {
			next, err = acc.Union(s)
		}
		if err != nil {
			return nil, 0, err
		}
		acc = next
	}
	if acc == nil {
		return nil, 0, nil
	}
	card := acc.Cardinality()
	if q.Type == Disjunctive && card > cardUpper {
		card = cardUpper
	}
	if len(q.Terms) == 1 {
		// Single-term queries keep the exact published length.
		if c, ok := c.TermCardinalities[q.Terms[0]]; ok {
			card = c
		}
	}
	return acc, card, nil
}

// intersectWithFallback intersects two synopses, falling back to union
// for families without an intersection (hash sketches): the union is a
// superset of the intersection, so the result is a valid — if very
// conservative — synopsis (Section 6.1).
func intersectWithFallback(a, b synopsis.Set) (synopsis.Set, error) {
	if ix, ok := a.(synopsis.Intersecter); ok {
		s, err := ix.Intersect(b)
		if err == nil {
			return s, nil
		}
		if !errors.Is(err, synopsis.ErrUnsupported) {
			return nil, err
		}
	}
	return a.Union(b)
}
