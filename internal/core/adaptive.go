package core

import (
	"math"

	"iqn/internal/synopsis"
)

// This file implements the paper's first future-work direction
// (Section 9): "strategies for adaptively choosing the synopses types
// and lengths depending on the P2P usage scenario". The selection rules
// encode the Section 3.4 discussion as an executable policy, so a peer
// (or a whole deployment) can derive its synopsis configuration from its
// workload profile instead of hard-coding one.

// Scenario profiles a deployment for synopsis selection.
type Scenario struct {
	// TypicalListLength is the expected per-term set cardinality the
	// synopses must summarize (a peer's median index-list length).
	TypicalListLength int
	// TargetError is the acceptable standard error of resemblance
	// estimates (default 0.1).
	TargetError float64
	// ConjunctiveQueries indicates the workload needs synopsis
	// intersections (Section 6.1).
	ConjunctiveQueries bool
	// HeterogeneousLengths indicates peers will publish synopses of
	// different lengths for the same term (autonomy, adaptive budgets) —
	// only MIPs remain comparable then (Section 3.4).
	HeterogeneousLengths bool
	// CardinalityOnly indicates the application only needs distinct
	// counts and unions (no resemblance), e.g. result-size estimation.
	CardinalityOnly bool
	// MaxBitsPerTerm caps the per-term budget (0: 4096).
	MaxBitsPerTerm int
	// Seed is the network-wide MIPs seed to embed in the recommendation.
	Seed uint64
}

// Recommendation is a synopsis configuration plus the reasoning that
// produced it.
type Recommendation struct {
	// Config is ready to use with synopsis.Config.New / minerva.Config.
	Config synopsis.Config
	// Rationale explains the choice in one sentence.
	Rationale string
}

// Recommend derives a synopsis configuration from a scenario, following
// the paper's qualitative guidance:
//
//   - heterogeneous lengths force MIPs (the only family whose vectors of
//     different lengths remain comparable);
//   - cardinality-only workloads get the cheapest counting sketch
//     (super-LogLog);
//   - conjunctive workloads prefer Bloom filters when the budget can
//     hold the typical list without overload (their intersection is
//     exact on the bit level), MIPs otherwise;
//   - everything else gets MIPs sized so the resemblance standard error
//     √(p(1−p)/N) meets the target at the worst case p = ½.
func Recommend(s Scenario) Recommendation {
	maxBits := s.MaxBitsPerTerm
	if maxBits <= 0 {
		maxBits = 4096
	}
	targetErr := s.TargetError
	if targetErr <= 0 {
		targetErr = 0.1
	}
	// MIPs length for the error target: N ≥ 0.25/se², 32-bit granularity.
	perms := int(math.Ceil(0.25 / (targetErr * targetErr)))
	mipsBits := roundUpPow2(perms) * 32
	if mipsBits > maxBits {
		mipsBits = maxBits - maxBits%32
		if mipsBits < 32 {
			mipsBits = 32
		}
	}
	mips := synopsis.Config{Kind: synopsis.KindMIPs, Bits: mipsBits, Seed: s.Seed}

	switch {
	case s.HeterogeneousLengths:
		return Recommendation{
			Config:    mips,
			Rationale: "peers publish different lengths; only MIPs stay comparable under min-length truncation (Section 3.4)",
		}
	case s.CardinalityOnly:
		bits := maxBits
		if bits > 2048 {
			bits = 2048 // ≈6.6% counting error; more rarely pays off
		}
		return Recommendation{
			Config:    synopsis.Config{Kind: synopsis.KindSuperLogLog, Bits: bits, Seed: s.Seed},
			Rationale: "only distinct counts and unions are needed; super-LogLog gives the best accuracy per bit",
		}
	case s.ConjunctiveQueries:
		// A Bloom filter serves conjunctions exactly (bit-wise AND) but
		// only below overload: demand ≥ 8 bits per expected element.
		if n := s.TypicalListLength; n > 0 && maxBits >= 8*n {
			m := roundUpPow2(8 * n)
			if m > maxBits {
				m = maxBits
			}
			return Recommendation{
				Config: synopsis.Config{
					Kind:        synopsis.KindBloom,
					Bits:        m,
					BloomHashes: synopsis.OptimalBloomHashes(m, n),
					Seed:        s.Seed,
				},
				Rationale: "conjunctive workload within Bloom capacity; bit-wise AND gives exact intersections (Section 6.1)",
			}
		}
		return Recommendation{
			Config:    mips,
			Rationale: "conjunctive workload but lists overload any affordable Bloom filter; MIPs with the max-heuristic intersection (Sections 3.4, 6.1)",
		}
	default:
		return Recommendation{
			Config:    mips,
			Rationale: "general ranked retrieval: MIPs meet the resemblance error target at the lowest cost (Section 3.4)",
		}
	}
}

// roundUpPow2 rounds n up to the next power of two (minimum 1).
func roundUpPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
