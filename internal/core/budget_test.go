package core

import (
	"testing"

	"iqn/internal/ir"
)

func postingsDesc(n int) []ir.Posting {
	ps := make([]ir.Posting, n)
	for i := range ps {
		ps[i] = ir.Posting{DocID: uint64(i), Score: float64(n - i)}
	}
	return ps
}

func TestTermBenefitListLength(t *testing.T) {
	if got := TermBenefit(postingsDesc(42), BenefitListLength, 0); got != 42 {
		t.Fatalf("list-length benefit = %v, want 42", got)
	}
	if got := TermBenefit(nil, BenefitListLength, 0); got != 0 {
		t.Fatalf("empty list benefit = %v", got)
	}
}

func TestTermBenefitAboveThreshold(t *testing.T) {
	ps := postingsDesc(10) // scores 10..1
	if got := TermBenefit(ps, BenefitAboveThreshold, 7); got != 3 {
		t.Fatalf("above-threshold benefit = %v, want 3 (scores 10,9,8)", got)
	}
	if got := TermBenefit(ps, BenefitAboveThreshold, 100); got != 0 {
		t.Fatalf("unreachable threshold benefit = %v", got)
	}
}

func TestTermBenefitQuantileMass(t *testing.T) {
	// Uniform scores: 90% of the mass needs 90% of the entries.
	ps := make([]ir.Posting, 10)
	for i := range ps {
		ps[i] = ir.Posting{DocID: uint64(i), Score: 1}
	}
	if got := TermBenefit(ps, BenefitQuantileMass, 0); got != 9 {
		t.Fatalf("uniform quantile benefit = %v, want 9", got)
	}
	// Skewed scores: one huge head entry covers the quantile alone.
	ps = []ir.Posting{{DocID: 1, Score: 1000}, {DocID: 2, Score: 1}, {DocID: 3, Score: 1}}
	if got := TermBenefit(ps, BenefitQuantileMass, 0); got != 1 {
		t.Fatalf("skewed quantile benefit = %v, want 1", got)
	}
	if got := TermBenefit(nil, BenefitQuantileMass, 0); got != 0 {
		t.Fatalf("empty quantile benefit = %v", got)
	}
}

func TestAllocateBudgetProportional(t *testing.T) {
	benefits := map[string]float64{"big": 300, "mid": 150, "small": 50}
	alloc := AllocateBudget(benefits, 10000, 64, 32)
	if len(alloc) != 3 {
		t.Fatalf("allocated %d terms, want 3: %v", len(alloc), alloc)
	}
	if alloc["big"] <= alloc["mid"] || alloc["mid"] <= alloc["small"] {
		t.Fatalf("allocation not benefit-ordered: %v", alloc)
	}
	total := 0
	for term, bits := range alloc {
		if bits%32 != 0 {
			t.Fatalf("%s allocation %d not a multiple of granularity", term, bits)
		}
		if bits < 64 {
			t.Fatalf("%s allocation %d below minimum", term, bits)
		}
		total += bits
	}
	if total > 10000 {
		t.Fatalf("allocated %d bits over budget 10000", total)
	}
	// Roughly proportional: big ≈ 2× mid.
	ratio := float64(alloc["big"]) / float64(alloc["mid"])
	if ratio < 1.5 || ratio > 2.6 {
		t.Fatalf("big/mid ratio = %v, want ≈2", ratio)
	}
}

func TestAllocateBudgetZeroBenefitExcluded(t *testing.T) {
	alloc := AllocateBudget(map[string]float64{"a": 10, "zero": 0, "neg": -5}, 1000, 32, 32)
	if _, ok := alloc["zero"]; ok {
		t.Fatal("zero-benefit term allocated")
	}
	if _, ok := alloc["neg"]; ok {
		t.Fatal("negative-benefit term allocated")
	}
	if alloc["a"] == 0 {
		t.Fatal("positive-benefit term not allocated")
	}
}

func TestAllocateBudgetTightBudget(t *testing.T) {
	// Budget fits only two minimum allocations: highest-benefit terms win.
	benefits := map[string]float64{"a": 3, "b": 2, "c": 1}
	alloc := AllocateBudget(benefits, 128, 64, 32)
	if len(alloc) > 2 {
		t.Fatalf("tight budget allocated %d terms: %v", len(alloc), alloc)
	}
	if _, ok := alloc["a"]; !ok {
		t.Fatalf("highest-benefit term missing: %v", alloc)
	}
	total := 0
	for _, b := range alloc {
		total += b
	}
	if total > 128 {
		t.Fatalf("over budget: %v", alloc)
	}
}

func TestAllocateBudgetDegenerate(t *testing.T) {
	if got := AllocateBudget(nil, 1000, 32, 32); len(got) != 0 {
		t.Fatalf("nil benefits allocated %v", got)
	}
	if got := AllocateBudget(map[string]float64{"a": 1}, 0, 32, 32); len(got) != 0 {
		t.Fatalf("zero budget allocated %v", got)
	}
	// Granularity and minimum clamp to sane values.
	got := AllocateBudget(map[string]float64{"a": 1}, 100, 0, 0)
	if got["a"] <= 0 {
		t.Fatalf("degenerate params allocated %v", got)
	}
}

func TestAllocateBudgetDeterministic(t *testing.T) {
	benefits := map[string]float64{"a": 5, "b": 5, "c": 5, "d": 5}
	first := AllocateBudget(benefits, 500, 64, 32)
	for i := 0; i < 10; i++ {
		if got := AllocateBudget(benefits, 500, 64, 32); len(got) != len(first) {
			t.Fatalf("allocation varies across runs: %v vs %v", got, first)
		} else {
			for k, v := range first {
				if got[k] != v {
					t.Fatalf("allocation varies for %s: %d vs %d", k, got[k], v)
				}
			}
		}
	}
}
