package core

import (
	"sort"

	"iqn/internal/ir"
)

// This file implements the adaptive synopsis lengths of Section 7.2: a
// peer with a total space budget B (bits) for all its per-term synopses
// chooses each term's synopsis length in proportion to a notion of
// benefit for that term — a knapsack-like heuristic.

// BenefitPolicy selects the benefit notion of Section 7.2.
type BenefitPolicy int

const (
	// BenefitListLength weighs a term by its index-list length: longer
	// lists get longer synopses.
	BenefitListLength BenefitPolicy = iota
	// BenefitAboveThreshold weighs a term by the number of list entries
	// whose relevance score exceeds a threshold.
	BenefitAboveThreshold
	// BenefitQuantileMass weighs a term by the number of its top entries
	// whose accumulated score mass reaches the 90% quantile of the
	// list's score distribution.
	BenefitQuantileMass
)

// String names the policy.
func (p BenefitPolicy) String() string {
	switch p {
	case BenefitAboveThreshold:
		return "above-threshold"
	case BenefitQuantileMass:
		return "quantile-mass"
	default:
		return "list-length"
	}
}

// TermBenefit computes the benefit weight of one term's postings list
// under a policy. threshold only applies to BenefitAboveThreshold.
// Postings must be sorted by descending score (ir.Index order).
func TermBenefit(postings []ir.Posting, policy BenefitPolicy, threshold float64) float64 {
	switch policy {
	case BenefitAboveThreshold:
		n := 0
		for _, p := range postings {
			if p.Score > threshold {
				n++
			}
		}
		return float64(n)
	case BenefitQuantileMass:
		var total float64
		for _, p := range postings {
			total += p.Score
		}
		if total <= 0 {
			return 0
		}
		var acc float64
		for i, p := range postings {
			acc += p.Score
			if acc >= 0.9*total {
				return float64(i + 1)
			}
		}
		return float64(len(postings))
	default:
		return float64(len(postings))
	}
}

// AllocateBudget splits a total bit budget across terms proportionally to
// their benefits, honoring a per-term minimum and a granularity (e.g. 32
// bits per MIPs permutation). Every term with positive benefit receives
// at least minBits (if the budget allows); leftover bits go to the
// highest-benefit terms first (largest-remainder rounding). Terms with
// zero benefit receive zero bits. The returned allocations sum to at most
// totalBits.
func AllocateBudget(benefits map[string]float64, totalBits, minBits, granularity int) map[string]int {
	if granularity < 1 {
		granularity = 1
	}
	if minBits < granularity {
		minBits = granularity
	}
	type tb struct {
		term    string
		benefit float64
	}
	terms := make([]tb, 0, len(benefits))
	var total float64
	for t, b := range benefits {
		if b <= 0 {
			continue
		}
		terms = append(terms, tb{t, b})
		total += b
	}
	out := make(map[string]int, len(terms))
	if len(terms) == 0 || totalBits < granularity {
		return out
	}
	// Deterministic processing order: descending benefit, then term.
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].benefit != terms[j].benefit {
			return terms[i].benefit > terms[j].benefit
		}
		return terms[i].term < terms[j].term
	})
	// If even minimums don't fit, serve the top terms only.
	maxTerms := totalBits / minBits
	if len(terms) > maxTerms {
		terms = terms[:maxTerms]
		total = 0
		for _, t := range terms {
			total += t.benefit
		}
	}
	remaining := totalBits
	for _, t := range terms {
		share := int(float64(totalBits) * t.benefit / total)
		share -= share % granularity
		if share < minBits {
			share = minBits
		}
		if share > remaining {
			share = remaining - remaining%granularity
		}
		if share < minBits {
			break
		}
		out[t.term] = share
		remaining -= share
	}
	// Hand leftover granules to the highest-benefit terms.
	for _, t := range terms {
		if remaining < granularity {
			break
		}
		if _, ok := out[t.term]; !ok {
			continue
		}
		out[t.term] += granularity
		remaining -= granularity
	}
	return out
}
