package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestRerouteEmptyReachedEqualsRoute pins the base case: with nothing
// reached yet, Reroute is exactly Route (same seeds, same engine, same
// plan down to the float bits).
func TestRerouteEmptyReachedEqualsRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	q := Query{Terms: []string{"alpha", "beta"}}
	cands := randPlanCandidates(rng, testCfg, 24, q.Terms, false)
	initiator := &cands[0]
	rest := cands[1:]
	opts := Options{MaxPeers: 4}
	routed, err := Route(q, initiator, rest, opts)
	if err != nil {
		t.Fatal(err)
	}
	rerouted, err := Reroute(q, initiator, nil, rest, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(routed, rerouted) {
		t.Fatalf("plans differ\nroute:   %+v\nreroute: %+v", routed, rerouted)
	}
}

// TestRerouteDeterministic requires identical replacement plans across
// repeated invocations with the same inputs.
func TestRerouteDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	q := Query{Terms: []string{"alpha", "beta", "gamma"}}
	cands := randPlanCandidates(rng, testCfg, 30, q.Terms, false)
	initiator := &cands[0]
	reached := cands[1:4]
	remaining := cands[4:]
	opts := Options{MaxPeers: 3, Parallelism: 4}
	a, err := Reroute(q, initiator, reached, remaining, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Reroute(q, initiator, reached, remaining, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("plans differ across runs\nfirst:  %+v\nsecond: %+v", a, b)
	}
	if len(a.Peers) != 3 {
		t.Fatalf("replacement plan size = %d, want 3", len(a.Peers))
	}
	for _, p := range a.Peers {
		for _, r := range reached {
			if p == r.Peer {
				t.Fatalf("replacement %s is a reached peer (caller contract: remaining excludes them)", p)
			}
		}
	}
}

// TestRerouteSeedsNovelty is the semantic heart of failure re-routing:
// the replacement is chosen for novelty beyond what the reached peers
// already contributed. A candidate that duplicates a reached peer's
// documents must lose to a smaller but fully novel candidate.
func TestRerouteSeedsNovelty(t *testing.T) {
	q := Query{Terms: []string{"x"}}
	reached := []Candidate{
		cand("reached", 1, testCfg, map[string][]uint64{"x": idRange(0, 400)}),
	}
	remaining := []Candidate{
		// Duplicate: same 400 documents the reached peer already covers.
		cand("duplicate", 1, testCfg, map[string][]uint64{"x": idRange(0, 400)}),
		// Novel: only 120 documents, but none already covered.
		cand("novel", 1, testCfg, map[string][]uint64{"x": idRange(1000, 1120)}),
	}
	plan, err := Reroute(q, nil, reached, remaining, Options{MaxPeers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Peers) != 1 || plan.Peers[0] != "novel" {
		t.Fatalf("replacement = %v, want [novel]", plan.Peers)
	}
	// Control: without the reached seed, sheer size wins.
	plan, err = Reroute(q, nil, nil, remaining, Options{MaxPeers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Peers) != 1 || plan.Peers[0] != "duplicate" {
		t.Fatalf("unseeded selection = %v, want [duplicate]", plan.Peers)
	}
}

// TestRerouteMultipleSeeds verifies every reached peer contributes to
// the reference synopsis: coverage is the union of all seeds.
func TestRerouteMultipleSeeds(t *testing.T) {
	q := Query{Terms: []string{"x"}}
	reached := []Candidate{
		cand("r1", 1, testCfg, map[string][]uint64{"x": idRange(0, 300)}),
		cand("r2", 1, testCfg, map[string][]uint64{"x": idRange(300, 600)}),
	}
	remaining := []Candidate{
		// Covered by r1 ∪ r2 but larger than the novel option.
		cand("covered", 1, testCfg, map[string][]uint64{"x": idRange(100, 500)}),
		cand("novel", 1, testCfg, map[string][]uint64{"x": idRange(2000, 2150)}),
	}
	plan, err := Reroute(q, nil, reached, remaining, Options{MaxPeers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Peers) != 1 || plan.Peers[0] != "novel" {
		t.Fatalf("replacement = %v, want [novel] (union coverage)", plan.Peers)
	}
	// Seeding only r1 leaves r2's range novel, so "covered" (400 docs,
	// 300 of them novel beyond r1) outweighs "novel" (150 docs).
	plan, err = Reroute(q, nil, reached[:1], remaining, Options{MaxPeers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Peers) != 1 || plan.Peers[0] != "covered" {
		t.Fatalf("single-seed replacement = %v, want [covered]", plan.Peers)
	}
}
