package core

import (
	"math"

	"iqn/internal/histogram"
	"iqn/internal/synopsis"
)

// Route runs the IQN routing algorithm (Section 5.1) and returns the
// query execution plan.
//
// initiator, when non-nil, describes the query initiator's own local
// result (or its local per-term synopses) and seeds the reference
// synopsis, exactly as the paper prescribes; pass nil for an initiator
// with no local collection. cands are the prospective peers assembled
// from the directory PeerLists. The input slices and candidates are not
// modified.
//
// Route only manipulates synopses — no candidate peer is contacted.
func Route(q Query, initiator *Candidate, cands []Candidate, opts Options) (Plan, error) {
	if err := validateQuery(q); err != nil {
		return Plan{}, err
	}
	state, err := newReferenceState(q, opts)
	if err != nil {
		return Plan{}, err
	}
	if initiator != nil {
		if _, err := state.absorb(initiator); err != nil {
			return Plan{}, err
		}
	}
	remaining := sortCandidates(cands)
	var plan Plan
	for len(remaining) > 0 {
		if opts.MaxPeers > 0 && len(plan.Peers) >= opts.MaxPeers {
			break
		}
		if opts.TargetCoverage > 0 && state.covered() >= opts.TargetCoverage {
			break
		}
		// Select-Best-Peer: rank remaining candidates by
		// quality^qw · novelty^nw against the current reference.
		bestIdx := -1
		var bestScore, bestQuality, bestNovelty float64
		for i := range remaining {
			nov, err := state.novelty(&remaining[i])
			if err != nil {
				return Plan{}, err
			}
			score := powWeight(remaining[i].Quality, opts.qualityWeight()) *
				powWeight(nov, opts.noveltyWeight())
			// Strict > keeps the earliest (highest-quality, then lowest
			// peer ID) candidate on ties, making plans deterministic.
			if bestIdx < 0 || score > bestScore {
				bestIdx, bestScore, bestQuality, bestNovelty = i, score, remaining[i].Quality, nov
			}
		}
		selected := remaining[bestIdx]
		// Aggregate-Synopses: fold the winner into the reference.
		if _, err := state.absorb(&selected); err != nil {
			return Plan{}, err
		}
		plan.Peers = append(plan.Peers, selected.Peer)
		plan.Steps = append(plan.Steps, Step{
			Peer:    selected.Peer,
			Quality: bestQuality,
			Novelty: bestNovelty,
			Score:   bestScore,
			Covered: state.covered(),
		})
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return plan, nil
}

// powWeight computes x^w with the routing conventions: weight 0 switches
// the factor off (returns 1), and non-positive bases score 0 so a peer
// with zero novelty or quality never outranks one with any.
func powWeight(x, w float64) float64 {
	if w == 0 {
		return 1
	}
	if x <= 0 {
		return 0
	}
	if w == 1 {
		return x
	}
	return math.Pow(x, w)
}

// referenceState is the mutable "result space already covered" side of
// IQN: novelty estimation against it (Select-Best-Peer) and absorption of
// a selected peer (Aggregate-Synopses). Implementations differ in how
// multi-keyword queries aggregate (Section 6) and whether score
// histograms refine the estimates (Section 7.1).
type referenceState interface {
	// novelty estimates how many new result documents the candidate
	// would add beyond the current reference.
	novelty(c *Candidate) (float64, error)
	// absorb folds the candidate into the reference and returns the
	// plain (unweighted) novelty it contributed.
	absorb(c *Candidate) (float64, error)
	// covered returns the estimated cardinality of the covered result
	// space — the stopping-criterion quantity.
	covered() float64
}

// newReferenceState picks the implementation for the options.
func newReferenceState(q Query, opts Options) (referenceState, error) {
	switch {
	case opts.UseHistograms:
		return &histogramState{q: q, refs: map[string]synopsis.Set{}, cards: map[string]float64{}}, nil
	case opts.Aggregation == PerTerm:
		return &perTermState{q: q, refs: map[string]synopsis.Set{}, cards: map[string]float64{}}, nil
	default:
		return &perPeerState{q: q, combined: map[PeerID]combinedSynopsis{}}, nil
	}
}

// combinedSynopsis caches a candidate's query-specific synopsis.
type combinedSynopsis struct {
	set  synopsis.Set
	card float64
}

// perPeerState implements Section 6.2: one combined synopsis per peer,
// one reference synopsis overall.
type perPeerState struct {
	q        Query
	ref      synopsis.Set
	card     float64
	combined map[PeerID]combinedSynopsis
}

func (s *perPeerState) combine(c *Candidate) (combinedSynopsis, error) {
	if cs, ok := s.combined[c.Peer]; ok {
		return cs, nil
	}
	set, card, err := combinePerPeer(*c, s.q)
	if err != nil {
		return combinedSynopsis{}, err
	}
	cs := combinedSynopsis{set: set, card: card}
	s.combined[c.Peer] = cs
	return cs, nil
}

func (s *perPeerState) novelty(c *Candidate) (float64, error) {
	cs, err := s.combine(c)
	if err != nil {
		return 0, err
	}
	if cs.set == nil {
		return 0, nil
	}
	if s.ref == nil {
		return cs.card, nil // empty reference: everything is new
	}
	return synopsis.EstimateNovelty(s.ref, cs.set, s.card, cs.card)
}

func (s *perPeerState) absorb(c *Candidate) (float64, error) {
	nov, err := s.novelty(c)
	if err != nil {
		return 0, err
	}
	cs, err := s.combine(c)
	if err != nil {
		return 0, err
	}
	if cs.set == nil {
		return 0, nil
	}
	if s.ref == nil {
		s.ref = cs.set.Clone()
	} else {
		u, err := s.ref.Union(cs.set)
		if err != nil {
			return 0, err
		}
		s.ref = u
	}
	// The covered cardinality grows by the selected peer's estimated
	// novelty: additive updates are monotone and avoid re-estimating the
	// whole union each round.
	s.card += nov
	return nov, nil
}

func (s *perPeerState) covered() float64 { return s.card }

// perTermState implements Section 6.3: term-specific reference synopses
// σ_prev(t), candidate novelty summed over terms. No intersections are
// needed even for conjunctive queries — the trade-off the paper
// highlights for this strategy.
type perTermState struct {
	q     Query
	refs  map[string]synopsis.Set
	cards map[string]float64
}

func (s *perTermState) termNovelty(c *Candidate, t string) (float64, error) {
	cs := c.TermSynopses[t]
	if cs == nil {
		return 0, nil
	}
	card, ok := c.TermCardinalities[t]
	if !ok {
		card = cs.Cardinality()
	}
	ref := s.refs[t]
	if ref == nil {
		return card, nil
	}
	return synopsis.EstimateNovelty(ref, cs, s.cards[t], card)
}

func (s *perTermState) novelty(c *Candidate) (float64, error) {
	var sum float64
	for _, t := range s.q.Terms {
		n, err := s.termNovelty(c, t)
		if err != nil {
			return 0, err
		}
		sum += n
	}
	return sum, nil
}

func (s *perTermState) absorb(c *Candidate) (float64, error) {
	var total float64
	for _, t := range s.q.Terms {
		n, err := s.termNovelty(c, t)
		if err != nil {
			return 0, err
		}
		cs := c.TermSynopses[t]
		if cs == nil {
			continue
		}
		if ref := s.refs[t]; ref == nil {
			s.refs[t] = cs.Clone()
		} else {
			u, err := ref.Union(cs)
			if err != nil {
				return 0, err
			}
			s.refs[t] = u
		}
		s.cards[t] += n
		total += n
	}
	return total, nil
}

func (s *perTermState) covered() float64 {
	// Term-wise sums over-count documents matching several terms; this
	// is the same deliberate crudeness as the per-term novelty sum
	// (Section 6.3), adequate for relative stopping decisions.
	var sum float64
	for _, c := range s.cards {
		sum += c
	}
	return sum
}

// histogramState implements Section 7.1: per-term reference synopses as
// in perTermState, but candidate novelty is the score-weighted sum over
// the candidate's histogram cells, so peers whose *high-scoring*
// documents are new win. Candidates without a histogram for a term fall
// back to their plain synopsis at full weight.
type histogramState struct {
	q     Query
	refs  map[string]synopsis.Set
	cards map[string]float64
}

func (s *histogramState) termNovelty(c *Candidate, t string) (weighted, plain float64, err error) {
	h := c.TermHistograms[t]
	if h == nil {
		// Plain-synopsis fallback, weight 1.
		cs := c.TermSynopses[t]
		if cs == nil {
			return 0, 0, nil
		}
		card, ok := c.TermCardinalities[t]
		if !ok {
			card = cs.Cardinality()
		}
		ref := s.refs[t]
		if ref == nil {
			return card, card, nil
		}
		n, err := synopsis.EstimateNovelty(ref, cs, s.cards[t], card)
		return n, n, err
	}
	ref := s.refs[t]
	if ref == nil {
		// Empty reference: every cell is fully novel.
		var w float64
		n := len(h.Cells)
		for i, cell := range h.Cells {
			w += histogram.CellWeight(i, n) * float64(cell.Count)
		}
		return w, float64(h.Count()), nil
	}
	w, err := histogram.WeightedNovelty(ref, s.cards[t], h)
	if err != nil {
		return 0, 0, err
	}
	flat, err := h.Flatten()
	if err != nil {
		return 0, 0, err
	}
	p, err := synopsis.EstimateNovelty(ref, flat, s.cards[t], float64(h.Count()))
	if err != nil {
		return 0, 0, err
	}
	return w, p, nil
}

func (s *histogramState) novelty(c *Candidate) (float64, error) {
	var sum float64
	for _, t := range s.q.Terms {
		w, _, err := s.termNovelty(c, t)
		if err != nil {
			return 0, err
		}
		sum += w
	}
	return sum, nil
}

func (s *histogramState) absorb(c *Candidate) (float64, error) {
	var total float64
	for _, t := range s.q.Terms {
		_, plain, err := s.termNovelty(c, t)
		if err != nil {
			return 0, err
		}
		var flat synopsis.Set
		if h := c.TermHistograms[t]; h != nil {
			flat, err = h.Flatten()
			if err != nil {
				return 0, err
			}
		} else if cs := c.TermSynopses[t]; cs != nil {
			flat = cs.Clone()
		}
		if flat == nil {
			continue
		}
		if ref := s.refs[t]; ref == nil {
			s.refs[t] = flat
		} else {
			u, err := ref.Union(flat)
			if err != nil {
				return 0, err
			}
			s.refs[t] = u
		}
		s.cards[t] += plain
		total += plain
	}
	return total, nil
}

func (s *histogramState) covered() float64 {
	var sum float64
	for _, c := range s.cards {
		sum += c
	}
	return sum
}
