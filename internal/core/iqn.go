package core

import (
	"math"
	"math/bits"

	"iqn/internal/histogram"
	"iqn/internal/synopsis"
)

// Route runs the IQN routing algorithm (Section 5.1) and returns the
// query execution plan.
//
// initiator, when non-nil, describes the query initiator's own local
// result (or its local per-term synopses) and seeds the reference
// synopsis, exactly as the paper prescribes; pass nil for an initiator
// with no local collection. cands are the prospective peers assembled
// from the directory PeerLists. The input slices and candidates are not
// modified.
//
// Route uses the Fast-IQN lazy-greedy selection engine (see lazyheap.go):
// per iteration it re-estimates novelty only for candidates whose stale
// score ceiling could still beat the current champion, and fans the
// estimations out over Options.Parallelism goroutines. The plan is
// byte-identical to the exhaustive rescan of SelectExhaustive.
//
// Route only manipulates synopses — no candidate peer is contacted.
func Route(q Query, initiator *Candidate, cands []Candidate, opts Options) (Plan, error) {
	return runIQN(q, initiator, cands, opts, true)
}

// SelectExhaustive runs the IQN loop with the original full-rescan
// Select-Best-Peer: every iteration re-estimates novelty for every
// remaining candidate. It is retained as the reference implementation the
// lazy engine is differentially tested and benchmarked against; both
// paths share the reference-state code, so their plans agree bit for bit.
func SelectExhaustive(q Query, initiator *Candidate, cands []Candidate, opts Options) (Plan, error) {
	return runIQN(q, initiator, cands, opts, false)
}

// powWeight computes x^w with the routing conventions: weight 0 switches
// the factor off (returns 1), and non-positive bases score 0 so a peer
// with zero novelty or quality never outranks one with any.
func powWeight(x, w float64) float64 {
	if w == 0 {
		return 1
	}
	if x <= 0 {
		return 0
	}
	if w == 1 {
		return x
	}
	return math.Pow(x, w)
}

// referenceState is the mutable "result space already covered" side of
// IQN: novelty estimation against it (Select-Best-Peer) and absorption of
// a selected peer (Aggregate-Synopses). Implementations differ in how
// multi-keyword queries aggregate (Section 6) and whether score
// histograms refine the estimates (Section 7.1).
//
// idx is the candidate's position in the engine's sorted candidate slice
// and keys the per-candidate caches and lazy-evaluation snapshots; pass
// -1 for candidates outside the slice (the initiator), which bypasses
// all caching. novelty may be called concurrently for distinct idx ≥ 0
// (each call writes only its own index); prepare, absorb and ceiling are
// single-threaded.
type referenceState interface {
	// prepare sizes the per-candidate caches for n candidates.
	prepare(n int)
	// novelty estimates how many new result documents the candidate
	// would add beyond the current reference, and snapshots the evidence
	// ceiling needs under idx.
	novelty(idx int, c *Candidate) (float64, error)
	// absorb folds the candidate into the reference and returns the
	// plain (unweighted) novelty it contributed.
	absorb(idx int, c *Candidate) (float64, error)
	// covered returns the estimated cardinality of the covered result
	// space — the stopping-criterion quantity.
	covered() float64
	// ceiling returns a sound upper bound on what novelty(idx, …) would
	// return now, computed without touching the reference synopses: from
	// the snapshot of the candidate's last evaluation when one exists,
	// and otherwise from staticCeiling.
	ceiling(idx int, c *Candidate) float64
	// staticCeiling returns a reference-independent upper bound on the
	// candidate's novelty against any reference — the sum of its
	// published term cardinalities, which every novelty estimate is
	// clamped to — and therefore also dominates every value ceiling can
	// return for the candidate. +Inf when no sound static bound exists.
	staticCeiling(idx int, c *Candidate) float64
}

// newReferenceState picks the implementation for the options.
func newReferenceState(q Query, opts Options) (referenceState, error) {
	switch {
	case opts.UseHistograms:
		return &histogramState{q: q, refs: map[string]synopsis.Set{}, cards: map[string]float64{}, monotone: true}, nil
	case opts.Aggregation == PerTerm:
		return &perTermState{q: q, refs: map[string]synopsis.Set{}, cards: map[string]float64{}, monotone: true}, nil
	default:
		return &perPeerState{q: q}, nil
	}
}

// isBloom reports whether the synopsis is a Bloom filter — the one family
// whose novelty estimate against a growing reference is provably monotone
// non-increasing (the reference's bits only get set, so the set-bit count
// of b ∧ ¬ref never increases), making a stale novelty a sound ceiling.
func isBloom(s synopsis.Set) bool {
	_, ok := s.(*synopsis.Bloom)
	return ok
}

// unionRef folds set into *ref in place when the family supports it and
// by allocate-and-replace otherwise. The resulting reference is
// value-identical either way. *ref must be owned by the caller (a Clone,
// never a candidate's synopsis). MIPs references go through unionRefMIPs
// instead, for the change evidence.
func unionRef(ref *synopsis.Set, set synopsis.Set) error {
	switch r := (*ref).(type) {
	case *synopsis.MIPs:
		_, _, err := r.UnionInPlace(set)
		return err
	case synopsis.InPlaceUnioner:
		return r.UnionInPlace(set)
	default:
		u, err := (*ref).Union(set)
		if err != nil {
			return err
		}
		*ref = u
		return nil
	}
}

// combinedSynopsis caches a candidate's query-specific synopsis.
type combinedSynopsis struct {
	set  synopsis.Set
	card float64
}

// ppSnap is the evidence perPeerState keeps from a candidate's last
// novelty evaluation so it can bound the candidate's current novelty
// without re-reading any synopsis.
type ppSnap struct {
	have bool
	// nilRef records that the reference was empty at evaluation time, in
	// which case the evaluated novelty equals the candidate's cardinality
	// and can only shrink afterwards.
	nilRef bool
	nov    float64 // novelty at evaluation time
	card   float64 // candidate's combined cardinality (immutable)
	// MIPs detail: with r = matches/n at evaluation and the positions
	// that matched, the only way the candidate can lose a match is the
	// reference minimum decreasing at a matched position — which absorb
	// records in maskLog — so a lower bound on the current resemblance
	// (and with it an upper bound on novelty) follows from counting the
	// matched positions changed since.
	mips  bool
	epoch int     // len(maskLog) at evaluation time
	r     float64 // resemblance at evaluation time
	match uint64  // matched positions (first min(n, 64))
	n     int     // compared positions
}

// perPeerState implements Section 6.2: one combined synopsis per peer,
// one reference synopsis overall.
type perPeerState struct {
	q    Query
	ref  synopsis.Set
	card float64
	// refIsBloom marks the monotone family (see isBloom).
	refIsBloom bool
	// refShaky is set when a MIPs reference shrank to a shorter
	// candidate's length: positions vanish, previously computed match
	// masks no longer line up, and MIPs ceilings fall back to the
	// candidate cardinality.
	refShaky bool
	combined []combinedSynopsis
	haveComb []bool
	snap     []ppSnap
	// static caches the pre-evaluation novelty ceilings (see staticBound).
	static     []float64
	haveStatic []bool
	// maskLog records, per absorb, which of the reference's first 64
	// MIPs positions strictly decreased (all-ones for non-MIPs absorbs
	// and the initial clone). suffix caches the suffix ORs.
	maskLog []uint64
	suffix  []uint64
}

func (s *perPeerState) prepare(n int) {
	s.combined = make([]combinedSynopsis, n)
	s.haveComb = make([]bool, n)
	s.snap = make([]ppSnap, n)
	s.static = make([]float64, n)
	s.haveStatic = make([]bool, n)
}

func (s *perPeerState) combine(idx int, c *Candidate) (combinedSynopsis, error) {
	if idx >= 0 && idx < len(s.haveComb) && s.haveComb[idx] {
		return s.combined[idx], nil
	}
	set, card, err := combinePerPeer(*c, s.q)
	if err != nil {
		return combinedSynopsis{}, err
	}
	cs := combinedSynopsis{set: set, card: card}
	if idx >= 0 && idx < len(s.haveComb) {
		s.combined[idx] = cs
		s.haveComb[idx] = true
	}
	return cs, nil
}

func (s *perPeerState) novelty(idx int, c *Candidate) (float64, error) {
	cs, err := s.combine(idx, c)
	if err != nil {
		return 0, err
	}
	sn := ppSnap{have: true, card: cs.card}
	if cs.set == nil {
		s.record(idx, sn) // novelty 0 forever: ceiling card == 0
		return 0, nil
	}
	if s.ref == nil {
		sn.nilRef = true
		sn.nov = cs.card
		s.record(idx, sn)
		return cs.card, nil // empty reference: everything is new
	}
	if refM, ok := s.ref.(*synopsis.MIPs); ok {
		if bM, ok := cs.set.(*synopsis.MIPs); ok {
			// Same estimate as EstimateNovelty's resemblance path, with
			// the match evidence captured for ceiling.
			r, match, n, err := refM.ResemblanceDetail(bM)
			if err != nil {
				return 0, err
			}
			nov := synopsis.NoveltyFromResemblance(r, s.card, cs.card)
			sn.nov = nov
			sn.mips = n > 0 && n <= 64
			sn.epoch = len(s.maskLog)
			sn.r, sn.match, sn.n = r, match, n
			s.record(idx, sn)
			return nov, nil
		}
	}
	nov, err := synopsis.EstimateNovelty(s.ref, cs.set, s.card, cs.card)
	if err != nil {
		return 0, err
	}
	sn.nov = nov
	s.record(idx, sn)
	return nov, nil
}

func (s *perPeerState) record(idx int, sn ppSnap) {
	if idx >= 0 && idx < len(s.snap) {
		s.snap[idx] = sn
	}
}

func (s *perPeerState) ceiling(idx int, c *Candidate) float64 {
	if idx < 0 || idx >= len(s.snap) || !s.snap[idx].have {
		return s.staticCeiling(idx, c)
	}
	sn := &s.snap[idx]
	switch {
	case sn.nilRef:
		// Evaluated against an empty reference: nov == card then, and
		// novelty never exceeds the candidate's cardinality.
		return sn.nov
	case sn.mips && !s.refShaky:
		// Matched positions lost since the evaluation are bounded by the
		// matched ∩ changed positions; resemblance is bounded below by
		// the surviving match fraction, and the novelty formula is
		// monotone (decreasing in r, and we use the current, larger
		// reference cardinality which only tightens the overlap bound in
		// our favor as an upper bound on novelty).
		lost := bits.OnesCount64(sn.match & s.changedSince(sn.epoch))
		r := sn.r - float64(lost)/float64(sn.n)
		if r < 0 {
			r = 0
		}
		return synopsis.NoveltyFromResemblance(r, s.card, sn.card)
	case s.refIsBloom:
		return sn.nov
	default:
		// Hash-sketch families: inclusion-exclusion novelty is not
		// monotone, but it never exceeds the candidate's cardinality.
		return sn.card
	}
}

// staticCeiling is the pre-evaluation novelty ceiling: combinePerPeer
// clamps the combined cardinality of a disjunctive (or single-term)
// combination to the sum of the candidate's published term
// cardinalities, and every novelty estimate is clamped to the combined
// cardinality, so that sum dominates the candidate's novelty against any
// reference (and with it every snapshot ceiling, which never exceeds the
// combined cardinality either). A multi-term conjunctive combination's
// cardinality is an unclamped intersection estimate with no such static
// bound, so those candidates stay unprunable until first evaluated.
func (s *perPeerState) staticCeiling(idx int, c *Candidate) float64 {
	if s.q.Type == Conjunctive && len(s.q.Terms) > 1 {
		return math.Inf(1)
	}
	if idx < 0 || idx >= len(s.static) {
		return sumTermCards(c, s.q)
	}
	if !s.haveStatic[idx] {
		s.static[idx] = sumTermCards(c, s.q)
		s.haveStatic[idx] = true
	}
	return s.static[idx]
}

// sumTermCards mirrors combinePerPeer's cardinality upper bound: the
// published per-term list length when posted, the synopsis estimate
// otherwise, missing terms contributing nothing.
func sumTermCards(c *Candidate, q Query) float64 {
	var sum float64
	for _, t := range q.Terms {
		set := c.TermSynopses[t]
		if set == nil {
			continue
		}
		if card, ok := c.TermCardinalities[t]; ok {
			sum += card
		} else {
			sum += set.Cardinality()
		}
	}
	return sum
}

// changedSince ORs the per-absorb change masks recorded after the given
// epoch. The suffix-OR cache is rebuilt at most once per absorb.
func (s *perPeerState) changedSince(epoch int) uint64 {
	if epoch >= len(s.maskLog) {
		return 0
	}
	if len(s.suffix) != len(s.maskLog) {
		s.suffix = append(s.suffix[:0], s.maskLog...)
		for i := len(s.suffix) - 2; i >= 0; i-- {
			s.suffix[i] |= s.suffix[i+1]
		}
	}
	return s.suffix[epoch]
}

func (s *perPeerState) absorb(idx int, c *Candidate) (float64, error) {
	nov, err := s.novelty(idx, c)
	if err != nil {
		return 0, err
	}
	cs, err := s.combine(idx, c)
	if err != nil {
		return 0, err
	}
	if cs.set == nil {
		return 0, nil
	}
	if s.ref == nil {
		s.ref = cs.set.Clone()
		s.refIsBloom = isBloom(s.ref)
		s.maskLog = append(s.maskLog, ^uint64(0))
	} else if refM, ok := s.ref.(*synopsis.MIPs); ok {
		changed, shrunk, err := refM.UnionInPlace(cs.set)
		if err != nil {
			return 0, err
		}
		if shrunk {
			s.refShaky = true
		}
		s.maskLog = append(s.maskLog, changed)
	} else {
		if err := unionRef(&s.ref, cs.set); err != nil {
			return 0, err
		}
		s.maskLog = append(s.maskLog, ^uint64(0))
	}
	// The covered cardinality grows by the selected peer's estimated
	// novelty: additive updates are monotone and avoid re-estimating the
	// whole union each round.
	s.card += nov
	return nov, nil
}

func (s *perPeerState) covered() float64 { return s.card }

// termSnap is the lazy-evaluation snapshot of the per-term and histogram
// states: the summed novelty at evaluation time plus a static upper
// bound (the sum of the candidate's published term cardinalities, or the
// cell-weighted counts for histograms) that holds against any reference.
type termSnap struct {
	have  bool
	nov   float64
	bound float64
}

// snapCeiling is the shared snapshot-ceiling rule of perTermState and
// histogramState: while every absorbed synopsis has been a Bloom filter
// (or a term's reference is still empty), each term's novelty is
// monotone non-increasing and the stale value is a sound ceiling;
// otherwise fall back to the snapshot's static bound. ok is false when
// the candidate has no snapshot.
func snapCeiling(snap []termSnap, idx int, monotone bool) (float64, bool) {
	if idx < 0 || idx >= len(snap) || !snap[idx].have {
		return 0, false
	}
	if monotone {
		return snap[idx].nov, true
	}
	return snap[idx].bound, true
}

// termStatics caches per-candidate pre-evaluation ceilings: the same
// reference-independent bound the snapshots carry (every term novelty is
// clamped at the term cardinality, weighted novelty at the cell-weighted
// count sum), computable without touching any synopsis.
type termStatics struct {
	static     []float64
	haveStatic []bool
}

func (ts *termStatics) prepare(n int) {
	ts.static = make([]float64, n)
	ts.haveStatic = make([]bool, n)
}

func (ts *termStatics) get(idx int) (float64, bool) {
	if idx < 0 || idx >= len(ts.static) || !ts.haveStatic[idx] {
		return 0, false
	}
	return ts.static[idx], true
}

func (ts *termStatics) set(idx int, v float64) {
	if idx >= 0 && idx < len(ts.static) {
		ts.static[idx] = v
		ts.haveStatic[idx] = true
	}
}

// perTermState implements Section 6.3: term-specific reference synopses
// σ_prev(t), candidate novelty summed over terms. No intersections are
// needed even for conjunctive queries — the trade-off the paper
// highlights for this strategy.
type perTermState struct {
	q        Query
	refs     map[string]synopsis.Set
	cards    map[string]float64
	monotone bool
	snap     []termSnap
	statics  termStatics
}

func (s *perTermState) prepare(n int) {
	s.snap = make([]termSnap, n)
	s.statics.prepare(n)
}

func (s *perTermState) termCard(c *Candidate, t string) float64 {
	cs := c.TermSynopses[t]
	if cs == nil {
		return 0
	}
	if card, ok := c.TermCardinalities[t]; ok {
		return card
	}
	return cs.Cardinality()
}

func (s *perTermState) termNovelty(c *Candidate, t string) (float64, error) {
	cs := c.TermSynopses[t]
	if cs == nil {
		return 0, nil
	}
	card, ok := c.TermCardinalities[t]
	if !ok {
		card = cs.Cardinality()
	}
	ref := s.refs[t]
	if ref == nil {
		return card, nil
	}
	return synopsis.EstimateNovelty(ref, cs, s.cards[t], card)
}

func (s *perTermState) novelty(idx int, c *Candidate) (float64, error) {
	var sum, bound float64
	for _, t := range s.q.Terms {
		n, err := s.termNovelty(c, t)
		if err != nil {
			return 0, err
		}
		sum += n
		bound += s.termCard(c, t)
	}
	if idx >= 0 && idx < len(s.snap) {
		s.snap[idx] = termSnap{have: true, nov: sum, bound: bound}
	}
	return sum, nil
}

func (s *perTermState) ceiling(idx int, c *Candidate) float64 {
	if cl, ok := snapCeiling(s.snap, idx, s.monotone); ok {
		return cl
	}
	return s.staticCeiling(idx, c)
}

func (s *perTermState) staticCeiling(idx int, c *Candidate) float64 {
	if v, ok := s.statics.get(idx); ok {
		return v
	}
	var sum float64
	for _, t := range s.q.Terms {
		sum += s.termCard(c, t)
	}
	s.statics.set(idx, sum)
	return sum
}

func (s *perTermState) absorb(idx int, c *Candidate) (float64, error) {
	var total float64
	for _, t := range s.q.Terms {
		n, err := s.termNovelty(c, t)
		if err != nil {
			return 0, err
		}
		cs := c.TermSynopses[t]
		if cs == nil {
			continue
		}
		if !isBloom(cs) {
			s.monotone = false
		}
		if ref := s.refs[t]; ref == nil {
			s.refs[t] = cs.Clone()
		} else {
			if err := unionRef(&ref, cs); err != nil {
				return 0, err
			}
			s.refs[t] = ref
		}
		s.cards[t] += n
		total += n
	}
	if idx >= 0 && idx < len(s.snap) {
		s.snap[idx].have = false // absorbed: snapshot no longer describes it
	}
	return total, nil
}

func (s *perTermState) covered() float64 {
	// Term-wise sums over-count documents matching several terms; this
	// is the same deliberate crudeness as the per-term novelty sum
	// (Section 6.3), adequate for relative stopping decisions. Summing
	// in query-term order (not map order) keeps the float result
	// bit-reproducible run to run.
	var sum float64
	for _, t := range s.q.Terms {
		sum += s.cards[t]
	}
	return sum
}

// histogramState implements Section 7.1: per-term reference synopses as
// in perTermState, but candidate novelty is the score-weighted sum over
// the candidate's histogram cells, so peers whose *high-scoring*
// documents are new win. Candidates without a histogram for a term fall
// back to their plain synopsis at full weight.
type histogramState struct {
	q        Query
	refs     map[string]synopsis.Set
	cards    map[string]float64
	monotone bool
	snap     []termSnap
	statics  termStatics
}

func (s *histogramState) prepare(n int) {
	s.snap = make([]termSnap, n)
	s.statics.prepare(n)
}

func (s *histogramState) termNovelty(c *Candidate, t string) (weighted, plain float64, err error) {
	h := c.TermHistograms[t]
	if h == nil {
		// Plain-synopsis fallback, weight 1.
		cs := c.TermSynopses[t]
		if cs == nil {
			return 0, 0, nil
		}
		card, ok := c.TermCardinalities[t]
		if !ok {
			card = cs.Cardinality()
		}
		ref := s.refs[t]
		if ref == nil {
			return card, card, nil
		}
		n, err := synopsis.EstimateNovelty(ref, cs, s.cards[t], card)
		return n, n, err
	}
	ref := s.refs[t]
	if ref == nil {
		// Empty reference: every cell is fully novel.
		var w float64
		n := len(h.Cells)
		for i, cell := range h.Cells {
			w += histogram.CellWeight(i, n) * float64(cell.Count)
		}
		return w, float64(h.Count()), nil
	}
	w, err := histogram.WeightedNovelty(ref, s.cards[t], h)
	if err != nil {
		return 0, 0, err
	}
	flat, err := h.Flatten()
	if err != nil {
		return 0, 0, err
	}
	p, err := synopsis.EstimateNovelty(ref, flat, s.cards[t], float64(h.Count()))
	if err != nil {
		return 0, 0, err
	}
	return w, p, nil
}

// termBound is a reference-independent upper bound on the term's weighted
// novelty: WeightedNovelty caps each cell at its exact count, so the
// cell-weighted count sum dominates it against any reference (and equals
// it against an empty one); the plain fallback is capped by the term
// cardinality.
func (s *histogramState) termBound(c *Candidate, t string) float64 {
	if h := c.TermHistograms[t]; h != nil {
		var w float64
		n := len(h.Cells)
		for i, cell := range h.Cells {
			w += histogram.CellWeight(i, n) * float64(cell.Count)
		}
		return w
	}
	cs := c.TermSynopses[t]
	if cs == nil {
		return 0
	}
	if card, ok := c.TermCardinalities[t]; ok {
		return card
	}
	return cs.Cardinality()
}

func (s *histogramState) novelty(idx int, c *Candidate) (float64, error) {
	var sum, bound float64
	for _, t := range s.q.Terms {
		w, _, err := s.termNovelty(c, t)
		if err != nil {
			return 0, err
		}
		sum += w
		bound += s.termBound(c, t)
	}
	if idx >= 0 && idx < len(s.snap) {
		s.snap[idx] = termSnap{have: true, nov: sum, bound: bound}
	}
	return sum, nil
}

func (s *histogramState) ceiling(idx int, c *Candidate) float64 {
	if cl, ok := snapCeiling(s.snap, idx, s.monotone); ok {
		return cl
	}
	return s.staticCeiling(idx, c)
}

func (s *histogramState) staticCeiling(idx int, c *Candidate) float64 {
	if v, ok := s.statics.get(idx); ok {
		return v
	}
	var sum float64
	for _, t := range s.q.Terms {
		sum += s.termBound(c, t)
	}
	s.statics.set(idx, sum)
	return sum
}

func (s *histogramState) absorb(idx int, c *Candidate) (float64, error) {
	var total float64
	for _, t := range s.q.Terms {
		_, plain, err := s.termNovelty(c, t)
		if err != nil {
			return 0, err
		}
		var flat synopsis.Set
		if h := c.TermHistograms[t]; h != nil {
			flat, err = h.Flatten()
			if err != nil {
				return 0, err
			}
		} else if cs := c.TermSynopses[t]; cs != nil {
			flat = cs.Clone()
		}
		if flat == nil {
			continue
		}
		if !isBloom(flat) {
			s.monotone = false
		}
		if ref := s.refs[t]; ref == nil {
			s.refs[t] = flat
		} else {
			if err := unionRef(&ref, flat); err != nil {
				return 0, err
			}
			s.refs[t] = ref
		}
		s.cards[t] += plain
		total += plain
	}
	if idx >= 0 && idx < len(s.snap) {
		s.snap[idx].have = false
	}
	return total, nil
}

func (s *histogramState) covered() float64 {
	var sum float64
	for _, t := range s.q.Terms {
		sum += s.cards[t]
	}
	return sum
}
