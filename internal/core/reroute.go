package core

// Reroute re-runs Select-Best-Peer after query-time peer failures — the
// failure-handling side of IQN routing. When a peer selected by Route
// turns out to be unreachable at forwarding time, the initiator has
// already paid for the directory PeerLists, so picking a replacement
// costs no further remote interaction: seed the reference synopsis with
// the initiator plus every peer the query *did* reach (reached), exclude
// the failed and already-tried peers from the candidate set, and run the
// same lazy-greedy selection for up to opts.MaxPeers replacements.
//
// reached entries are the same Candidate values Route saw; their
// synopses describe what the query already covers, so replacements are
// ranked by quality × the novelty they add beyond the surviving peers —
// not beyond the dead ones, whose results never arrived.
//
// cands must already exclude the failed and previously selected peers;
// Reroute does not filter. Determinism matches Route: identical inputs
// produce identical plans.
func Reroute(q Query, initiator *Candidate, reached []Candidate, cands []Candidate, opts Options) (Plan, error) {
	seeds := make([]*Candidate, 0, len(reached)+1)
	if initiator != nil {
		seeds = append(seeds, initiator)
	}
	for i := range reached {
		seeds = append(seeds, &reached[i])
	}
	return runIQNSeeded(q, seeds, cands, opts, true)
}
