package core

import (
	"testing"
	"time"
)

func TestDeadlineZeroBudgetUnarmed(t *testing.T) {
	for _, d := range []time.Duration{0, -time.Second} {
		dl := StartDeadline(d)
		if dl != nil {
			t.Fatalf("StartDeadline(%v) = %v, want nil (no budget)", d, dl)
		}
	}
	var dl *Deadline
	if dl.Armed() {
		t.Fatal("nil deadline reports Armed")
	}
	if dl.Expired() {
		t.Fatal("unarmed budget must never expire")
	}
	if got := dl.Total(); got != 0 {
		t.Fatalf("nil Total() = %v, want 0", got)
	}
	if got := dl.Remaining(); got != 0 {
		t.Fatalf("nil Remaining() = %v, want 0", got)
	}
	// With no budget, Cap must pass per-attempt timeouts through
	// unchanged — including "no timeout" (≤ 0).
	for _, tmo := range []time.Duration{0, -1, time.Second} {
		if got := dl.Cap(tmo); got != tmo {
			t.Fatalf("nil Cap(%v) = %v, want unchanged", tmo, got)
		}
	}
}

// fakeClock is a manually advanced clock for exercising budget-expiry
// branches without real sleeps.
type fakeClock struct {
	t time.Time
}

func (c *fakeClock) Now() time.Time {
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.t = c.t.Add(d)
}

func TestDeadlineAlreadyExpired(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	dl := StartDeadlineClock(time.Nanosecond, clk.Now)
	clk.Advance(time.Millisecond)
	if !dl.Armed() {
		t.Fatal("1ns budget should be armed")
	}
	if !dl.Expired() {
		t.Fatal("1ns budget should have expired")
	}
	if got := dl.Remaining(); got != 0 {
		t.Fatalf("expired Remaining() = %v, want 0", got)
	}
	// Cap on an expired budget returns a minimal positive duration —
	// never 0 or negative, which transports read as "no deadline".
	if got := dl.Cap(time.Second); got <= 0 {
		t.Fatalf("expired Cap() = %v, want positive", got)
	}
	if got := dl.Cap(0); got <= 0 {
		t.Fatalf("expired Cap(0) = %v, want positive", got)
	}
}

func TestDeadlineCapTightensTimeouts(t *testing.T) {
	dl := StartDeadline(time.Hour)
	if got := dl.Total(); got != time.Hour {
		t.Fatalf("Total() = %v, want 1h", got)
	}
	if got := dl.Remaining(); got <= 0 || got > time.Hour {
		t.Fatalf("Remaining() = %v, want within (0, 1h]", got)
	}
	// A tighter per-attempt timeout survives; a looser one (or none) is
	// capped to the remaining budget.
	if got := dl.Cap(time.Millisecond); got != time.Millisecond {
		t.Fatalf("Cap(1ms) = %v, want 1ms", got)
	}
	if got := dl.Cap(2 * time.Hour); got > time.Hour || got <= 0 {
		t.Fatalf("Cap(2h) = %v, want capped to remaining budget", got)
	}
	if got := dl.Cap(0); got > time.Hour || got <= 0 {
		t.Fatalf("Cap(0) = %v, want the remaining budget itself", got)
	}
}

func TestDeadlineExpiresOverTime(t *testing.T) {
	clk := &fakeClock{t: time.Unix(100, 0)}
	dl := StartDeadlineClock(5*time.Millisecond, clk.Now)
	if dl.Expired() {
		t.Fatal("fresh 5ms budget already expired")
	}
	clk.Advance(10 * time.Millisecond)
	if !dl.Expired() {
		t.Fatal("5ms budget should expire after 10ms")
	}
}

func TestDeadlineClockCountdown(t *testing.T) {
	// With an injectable clock the whole lifecycle is exact: Remaining
	// counts down deterministically, expiry flips precisely at the
	// boundary, and Cap degrades from pass-through to remainder to the
	// minimal positive sentinel.
	clk := &fakeClock{t: time.Unix(1000, 0)}
	dl := StartDeadlineClock(100*time.Millisecond, clk.Now)
	if got := dl.Remaining(); got != 100*time.Millisecond {
		t.Fatalf("fresh Remaining() = %v, want 100ms", got)
	}
	clk.Advance(40 * time.Millisecond)
	if got := dl.Remaining(); got != 60*time.Millisecond {
		t.Fatalf("Remaining() after 40ms = %v, want 60ms", got)
	}
	if got := dl.Cap(10 * time.Millisecond); got != 10*time.Millisecond {
		t.Fatalf("Cap(10ms) = %v, want 10ms (tighter timeout survives)", got)
	}
	if got := dl.Cap(time.Hour); got != 60*time.Millisecond {
		t.Fatalf("Cap(1h) = %v, want the 60ms remainder", got)
	}
	clk.Advance(60 * time.Millisecond)
	if !dl.Expired() {
		t.Fatal("budget must expire exactly at total elapsed")
	}
	if got := dl.Remaining(); got != 0 {
		t.Fatalf("boundary Remaining() = %v, want 0", got)
	}
	if got := dl.Cap(time.Second); got != time.Nanosecond {
		t.Fatalf("expired Cap() = %v, want the 1ns sentinel", got)
	}
}

func TestStartDeadlineClockNilClockFallsBack(t *testing.T) {
	dl := StartDeadlineClock(time.Hour, nil)
	if !dl.Armed() {
		t.Fatal("nil-clock deadline should be armed")
	}
	if dl.Expired() {
		t.Fatal("1h wall-clock budget already expired")
	}
	if got := dl.Remaining(); got <= 0 || got > time.Hour {
		t.Fatalf("Remaining() = %v, want within (0, 1h]", got)
	}
}
