package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"iqn/internal/histogram"
	"iqn/internal/ir"
	"iqn/internal/synopsis"
)

var testCfg = synopsis.Config{Kind: synopsis.KindMIPs, Bits: 2048, Seed: 1234}

// cand builds a candidate from explicit per-term ID sets.
func cand(peer string, quality float64, cfg synopsis.Config, termIDs map[string][]uint64) Candidate {
	c := Candidate{
		Peer:              PeerID(peer),
		Quality:           quality,
		TermSynopses:      map[string]synopsis.Set{},
		TermCardinalities: map[string]float64{},
	}
	for t, ids := range termIDs {
		c.TermSynopses[t] = cfg.FromIDs(ids)
		c.TermCardinalities[t] = float64(len(ids))
	}
	return c
}

// idRange returns the IDs [lo, hi).
func idRange(lo, hi uint64) []uint64 {
	ids := make([]uint64, 0, hi-lo)
	for i := lo; i < hi; i++ {
		ids = append(ids, i)
	}
	return ids
}

func TestRouteRejectsEmptyQuery(t *testing.T) {
	if _, err := Route(Query{}, nil, nil, Options{}); err == nil {
		t.Fatal("Route accepted empty query")
	}
	if _, err := RouteCORI(Query{}, nil, 3); err == nil {
		t.Fatal("RouteCORI accepted empty query")
	}
	if _, err := RoutePrior(Query{}, nil, nil, Options{}); err == nil {
		t.Fatal("RoutePrior accepted empty query")
	}
}

func TestRouteAvoidsOverlapWhereCORIDoesNot(t *testing.T) {
	// Peers A and B hold the SAME 1000 documents (both high quality);
	// peer C holds 1000 different documents at slightly lower quality.
	// Quality-only routing picks {A, B} and gets 1000 distinct docs;
	// IQN must pick {A, C} and get 2000.
	q := Query{Terms: []string{"x"}}
	shared := idRange(0, 1000)
	other := idRange(5000, 6000)
	cands := []Candidate{
		cand("A", 1.0, testCfg, map[string][]uint64{"x": shared}),
		cand("B", 0.99, testCfg, map[string][]uint64{"x": shared}),
		cand("C", 0.9, testCfg, map[string][]uint64{"x": other}),
	}
	for _, agg := range []AggregationMode{PerPeer, PerTerm} {
		plan, err := Route(q, nil, cands, Options{MaxPeers: 2, Aggregation: agg})
		if err != nil {
			t.Fatalf("%v: %v", agg, err)
		}
		want := []PeerID{"A", "C"}
		if !reflect.DeepEqual(plan.Peers, want) {
			t.Fatalf("%v: IQN plan = %v, want %v", agg, plan.Peers, want)
		}
	}
	coriPlan, err := RouteCORI(q, cands, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coriPlan.Peers, []PeerID{"A", "B"}) {
		t.Fatalf("CORI plan = %v, want [A B] (overlap-blind)", coriPlan.Peers)
	}
}

func TestRouteSeedsFromInitiator(t *testing.T) {
	// The initiator already holds A's documents, so A has zero novelty
	// from the start and C must win immediately — the paper's reference
	// seeding from the local query result.
	q := Query{Terms: []string{"x"}}
	docsA := idRange(0, 800)
	docsC := idRange(5000, 5400)
	initiator := cand("self", 0, testCfg, map[string][]uint64{"x": docsA})
	cands := []Candidate{
		cand("A", 1.0, testCfg, map[string][]uint64{"x": docsA}),
		cand("C", 0.5, testCfg, map[string][]uint64{"x": docsC}),
	}
	plan, err := Route(q, &initiator, cands, Options{MaxPeers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.Peers, []PeerID{"C"}) {
		t.Fatalf("plan = %v, want [C]", plan.Peers)
	}
	if plan.Steps[0].Novelty < 300 {
		t.Fatalf("selected novelty = %v, want ≈400", plan.Steps[0].Novelty)
	}
}

func TestRouteMaxPeers(t *testing.T) {
	q := Query{Terms: []string{"x"}}
	var cands []Candidate
	for i := 0; i < 10; i++ {
		lo := uint64(i * 1000)
		cands = append(cands, cand(string(rune('a'+i)), 1, testCfg,
			map[string][]uint64{"x": idRange(lo, lo+500)}))
	}
	for _, max := range []int{1, 3, 10, 0} {
		plan, err := Route(q, nil, cands, Options{MaxPeers: max})
		if err != nil {
			t.Fatal(err)
		}
		want := max
		if max <= 0 || max > len(cands) {
			want = len(cands)
		}
		if len(plan.Peers) != want {
			t.Fatalf("MaxPeers=%d: %d peers selected, want %d", max, len(plan.Peers), want)
		}
	}
}

func TestRouteTargetCoverage(t *testing.T) {
	q := Query{Terms: []string{"x"}}
	var cands []Candidate
	for i := 0; i < 8; i++ {
		lo := uint64(i * 1000)
		cands = append(cands, cand(string(rune('a'+i)), 1, testCfg,
			map[string][]uint64{"x": idRange(lo, lo+500)}))
	}
	plan, err := Route(q, nil, cands, Options{TargetCoverage: 1200})
	if err != nil {
		t.Fatal(err)
	}
	// Each disjoint peer adds ≈500 docs; coverage crosses 1200 after the
	// third selection.
	if len(plan.Peers) != 3 {
		t.Fatalf("%d peers to reach coverage 1200, want 3 (steps: %+v)", len(plan.Peers), plan.Steps)
	}
	if last := plan.Steps[len(plan.Steps)-1].Covered; last < 1200 {
		t.Fatalf("final covered = %v, want ≥ 1200", last)
	}
}

func TestRouteCoveredMonotone(t *testing.T) {
	q := Query{Terms: []string{"x", "y"}}
	rng := rand.New(rand.NewSource(5))
	var cands []Candidate
	for i := 0; i < 6; i++ {
		ids := make([]uint64, 600)
		for j := range ids {
			ids[j] = uint64(rng.Intn(3000))
		}
		cands = append(cands, cand(string(rune('a'+i)), 1, testCfg,
			map[string][]uint64{"x": ids[:300], "y": ids[300:]}))
	}
	for _, agg := range []AggregationMode{PerPeer, PerTerm} {
		plan, err := Route(q, nil, cands, Options{Aggregation: agg})
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Steps) != len(plan.Peers) {
			t.Fatalf("%d steps for %d peers", len(plan.Steps), len(plan.Peers))
		}
		prev := 0.0
		for _, s := range plan.Steps {
			if s.Covered < prev {
				t.Fatalf("%v: covered not monotone: %v after %v", agg, s.Covered, prev)
			}
			prev = s.Covered
		}
	}
}

func TestRouteQualityNoveltyTradeoff(t *testing.T) {
	// A high-quality peer with little novelty vs a mediocre peer with
	// high novelty: the product decides; weights can flip the decision.
	q := Query{Terms: []string{"x"}}
	refDocs := idRange(0, 1000)
	initiator := cand("self", 0, testCfg, map[string][]uint64{"x": refDocs})
	// "big" re-serves 950 covered docs plus 50 new; "fresh" has 500 new.
	big := append(append([]uint64{}, refDocs[:950]...), idRange(9000, 9050)...)
	cands := []Candidate{
		cand("big", 1.0, testCfg, map[string][]uint64{"x": big}),
		cand("fresh", 0.5, testCfg, map[string][]uint64{"x": idRange(20000, 20500)}),
	}
	plan, err := Route(q, &initiator, cands, Options{MaxPeers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// product: big ≈ 1.0·50 = 50, fresh ≈ 0.5·500 = 250 → fresh.
	if !reflect.DeepEqual(plan.Peers, []PeerID{"fresh"}) {
		t.Fatalf("plan = %v, want [fresh]", plan.Peers)
	}
	// Quality-only weighting degrades IQN to CORI ordering.
	plan, err = Route(q, &initiator, cands, Options{MaxPeers: 1, QualityWeight: 1, NoveltyWeight: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.Peers, []PeerID{"big"}) {
		t.Fatalf("quality-only plan = %v, want [big]", plan.Peers)
	}
}

func TestRouteDeterministic(t *testing.T) {
	q := Query{Terms: []string{"x", "y"}}
	rng := rand.New(rand.NewSource(7))
	var cands []Candidate
	for i := 0; i < 12; i++ {
		ids := make([]uint64, 400)
		for j := range ids {
			ids[j] = uint64(rng.Intn(5000))
		}
		cands = append(cands, cand(string(rune('a'+i)), 0.5+float64(i%3)*0.1, testCfg,
			map[string][]uint64{"x": ids[:200], "y": ids[200:]}))
	}
	p1, err := Route(q, nil, cands, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Shuffle the candidate order; the plan must not change.
	shuffled := append([]Candidate(nil), cands...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	p2, err := Route(q, nil, shuffled, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1.Peers, p2.Peers) {
		t.Fatalf("plans differ across input orders:\n%v\n%v", p1.Peers, p2.Peers)
	}
}

func TestRouteConjunctiveBloom(t *testing.T) {
	// Conjunctive queries intersect per-term synopses. Peer "both" holds
	// documents matching x∧y; peer "xonly" has x matches but disjoint y
	// docs, so its conjunctive novelty ≈ 0.
	cfg := synopsis.Config{Kind: synopsis.KindBloom, Bits: 1 << 14}
	q := Query{Terms: []string{"x", "y"}, Type: Conjunctive}
	both := cand("both", 0.5, cfg, map[string][]uint64{
		"x": idRange(0, 600), "y": idRange(0, 600),
	})
	xonly := cand("xonly", 1.0, cfg, map[string][]uint64{
		"x": idRange(1000, 1600), "y": idRange(9000, 9600),
	})
	plan, err := Route(q, nil, []Candidate{both, xonly}, Options{MaxPeers: 1, Aggregation: PerPeer})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.Peers, []PeerID{"both"}) {
		t.Fatalf("conjunctive plan = %v, want [both]", plan.Peers)
	}
}

func TestRouteConjunctiveMissingTerm(t *testing.T) {
	// A peer lacking a conjunctive term cannot contribute and must score
	// zero novelty under per-peer aggregation.
	q := Query{Terms: []string{"x", "y"}, Type: Conjunctive}
	full := cand("full", 0.1, testCfg, map[string][]uint64{
		"x": idRange(0, 100), "y": idRange(0, 100),
	})
	missing := cand("missing", 1.0, testCfg, map[string][]uint64{
		"x": idRange(500, 900),
	})
	plan, err := Route(q, nil, []Candidate{full, missing}, Options{MaxPeers: 1, Aggregation: PerPeer})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.Peers, []PeerID{"full"}) {
		t.Fatalf("plan = %v, want [full]", plan.Peers)
	}
}

func TestRouteConjunctiveHashSketchFallsBack(t *testing.T) {
	// Hash sketches have no intersection; conjunctive per-peer routing
	// must fall back to the union superset without erroring
	// (Section 6.1's crude approach).
	cfg := synopsis.Config{Kind: synopsis.KindHashSketch, Bits: 2048}
	q := Query{Terms: []string{"x", "y"}, Type: Conjunctive}
	cands := []Candidate{
		cand("a", 1, cfg, map[string][]uint64{"x": idRange(0, 300), "y": idRange(0, 300)}),
		cand("b", 1, cfg, map[string][]uint64{"x": idRange(500, 800), "y": idRange(500, 800)}),
	}
	plan, err := Route(q, nil, cands, Options{MaxPeers: 2, Aggregation: PerPeer})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Peers) != 2 {
		t.Fatalf("plan = %v, want both peers", plan.Peers)
	}
}

func TestRoutePerTermHandlesConjunctiveWithoutIntersection(t *testing.T) {
	// Section 6.3's selling point: per-term aggregation needs no
	// intersections even for conjunctive queries, for any synopsis kind.
	cfg := synopsis.Config{Kind: synopsis.KindHashSketch, Bits: 2048}
	q := Query{Terms: []string{"x", "y"}, Type: Conjunctive}
	cands := []Candidate{
		cand("a", 1, cfg, map[string][]uint64{"x": idRange(0, 300), "y": idRange(0, 300)}),
		cand("b", 1, cfg, map[string][]uint64{"x": idRange(0, 300), "y": idRange(0, 300)}),
		cand("c", 1, cfg, map[string][]uint64{"x": idRange(900, 1200), "y": idRange(900, 1200)}),
	}
	plan, err := Route(q, nil, cands, Options{MaxPeers: 2, Aggregation: PerTerm})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.Peers, []PeerID{"a", "c"}) {
		t.Fatalf("plan = %v, want [a c] (b duplicates a)", plan.Peers)
	}
}

func TestRoutePriorVsIQN(t *testing.T) {
	// The scenario that separates IQN from the SIGIR'05 one-shot method:
	// twins T1/T2 are identical to each other but novel w.r.t. the
	// initiator; C is half-covered by the twins. One-shot novelty ranks
	// T1, T2 on top (both fully novel at scoring time) and returns
	// duplicates; IQN re-aggregates and picks C second.
	q := Query{Terms: []string{"x"}}
	twins := idRange(0, 1000)
	cDocs := append(append([]uint64{}, twins[:500]...), idRange(5000, 5500)...)
	cands := []Candidate{
		cand("T1", 1.0, testCfg, map[string][]uint64{"x": twins}),
		cand("T2", 0.99, testCfg, map[string][]uint64{"x": twins}),
		cand("C", 0.9, testCfg, map[string][]uint64{"x": cDocs}),
	}
	iqn, err := Route(q, nil, cands, Options{MaxPeers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(iqn.Peers, []PeerID{"T1", "C"}) {
		t.Fatalf("IQN plan = %v, want [T1 C]", iqn.Peers)
	}
	prior, err := RoutePrior(q, nil, cands, Options{MaxPeers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(prior.Peers, []PeerID{"T1", "T2"}) {
		t.Fatalf("prior plan = %v, want [T1 T2] (one-shot novelty cannot see the duplicate)", prior.Peers)
	}
}

func TestRoutePriorSeedsFromInitiator(t *testing.T) {
	// The prior method does use the initiator's reference synopsis — it
	// just never updates it.
	q := Query{Terms: []string{"x"}}
	initiator := cand("self", 0, testCfg, map[string][]uint64{"x": idRange(0, 500)})
	cands := []Candidate{
		cand("covered", 1.0, testCfg, map[string][]uint64{"x": idRange(0, 500)}),
		cand("fresh", 0.8, testCfg, map[string][]uint64{"x": idRange(9000, 9500)}),
	}
	plan, err := RoutePrior(q, &initiator, cands, Options{MaxPeers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.Peers, []PeerID{"fresh"}) {
		t.Fatalf("prior plan = %v, want [fresh]", plan.Peers)
	}
}

func TestRouteHistogramPrefersHighScoreNovelty(t *testing.T) {
	// Build histograms from postings. The reference covers the HIGH-score
	// documents of peer "tail" (so its remaining novelty is low-score
	// tail) and the LOW-score documents of peer "head" (so its novelty
	// is high-score). Score-conscious IQN must prefer "head"; both peers
	// tie under plain cardinality novelty.
	mk := func(lo uint64, n int, descending bool) []ir.Posting {
		ps := make([]ir.Posting, n)
		for i := range ps {
			score := float64(i + 1)
			if descending {
				score = float64(n - i)
			}
			ps[i] = ir.Posting{DocID: lo + uint64(i), Score: score}
		}
		return ps
	}
	const cells = 4
	// Peer "head": docs 0..999, scores ascending with ID (docs 750+ are
	// the high-score band). Reference covers IDs 0..499 (low bands).
	head := histogram.Build(mk(0, 1000, false), cells, testCfg)
	// Peer "tail": docs 5000..5999, scores DESCENDING with ID (docs
	// 5000..5249 high band). Reference covers IDs 5000..5499 (high bands).
	tail := histogram.Build(mk(5000, 1000, true), cells, testCfg)
	refIDs := append(idRange(0, 500), idRange(5000, 5500)...)
	initiator := cand("self", 0, testCfg, map[string][]uint64{"x": refIDs})
	cands := []Candidate{
		{
			Peer: "head", Quality: 1,
			TermSynopses:      map[string]synopsis.Set{"x": testCfg.FromIDs(idRange(0, 1000))},
			TermCardinalities: map[string]float64{"x": 1000},
			TermHistograms:    map[string]*histogram.Histogram{"x": head},
		},
		{
			Peer: "tail", Quality: 1,
			TermSynopses:      map[string]synopsis.Set{"x": testCfg.FromIDs(idRange(5000, 6000))},
			TermCardinalities: map[string]float64{"x": 1000},
			TermHistograms:    map[string]*histogram.Histogram{"x": tail},
		},
	}
	q := Query{Terms: []string{"x"}}
	plan, err := Route(q, &initiator, cands, Options{MaxPeers: 1, UseHistograms: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.Peers, []PeerID{"head"}) {
		t.Fatalf("histogram plan = %v, want [head] (novelty in high-score cells)", plan.Peers)
	}
}

func TestRouteHistogramFallsBackToPlainSynopses(t *testing.T) {
	// Candidates without histograms still route under UseHistograms.
	q := Query{Terms: []string{"x"}}
	cands := []Candidate{
		cand("a", 1, testCfg, map[string][]uint64{"x": idRange(0, 300)}),
		cand("b", 1, testCfg, map[string][]uint64{"x": idRange(0, 300)}),
	}
	plan, err := Route(q, nil, cands, Options{MaxPeers: 2, UseHistograms: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Peers) != 2 {
		t.Fatalf("plan = %v", plan.Peers)
	}
	// The duplicate must carry ≈0 novelty on its step.
	if plan.Steps[1].Novelty > 50 {
		t.Fatalf("duplicate's novelty = %v, want ≈0", plan.Steps[1].Novelty)
	}
}

func TestRouteCORIOrder(t *testing.T) {
	q := Query{Terms: []string{"x"}}
	cands := []Candidate{
		cand("low", 0.1, testCfg, nil),
		cand("high", 0.9, testCfg, nil),
		cand("mid", 0.5, testCfg, nil),
	}
	plan, err := RouteCORI(q, cands, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.Peers, []PeerID{"high", "mid", "low"}) {
		t.Fatalf("CORI order = %v", plan.Peers)
	}
	plan, err = RouteCORI(q, cands, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Peers) != 2 {
		t.Fatalf("CORI maxPeers: %v", plan.Peers)
	}
}

func TestPowWeight(t *testing.T) {
	cases := []struct{ x, w, want float64 }{
		{5, 0, 1},
		{0, 0, 1},
		{0, 1, 0},
		{-3, 2, 0},
		{4, 1, 4},
		{4, 0.5, 2},
		{9, 2, 81},
	}
	for _, c := range cases {
		if got := powWeight(c.x, c.w); got != c.want {
			t.Errorf("powWeight(%v,%v) = %v, want %v", c.x, c.w, got, c.want)
		}
	}
}

func TestModeStrings(t *testing.T) {
	if Disjunctive.String() != "disjunctive" || Conjunctive.String() != "conjunctive" {
		t.Fatal("QueryType strings wrong")
	}
	if PerPeer.String() != "per-peer" || PerTerm.String() != "per-term" {
		t.Fatal("AggregationMode strings wrong")
	}
	for _, p := range []BenefitPolicy{BenefitListLength, BenefitAboveThreshold, BenefitQuantileMass} {
		if p.String() == "" || strings.Contains(p.String(), " ") {
			t.Fatalf("policy string %q", p.String())
		}
	}
}

func TestRouteMixedSynopsisLengths(t *testing.T) {
	// Peers publish MIPs of different lengths (Section 7.2 autonomy);
	// routing must keep working via min-length comparison.
	long := synopsis.Config{Kind: synopsis.KindMIPs, Bits: 4096, Seed: 1234}
	short := synopsis.Config{Kind: synopsis.KindMIPs, Bits: 1024, Seed: 1234}
	q := Query{Terms: []string{"x"}}
	cands := []Candidate{
		cand("long", 1.0, long, map[string][]uint64{"x": idRange(0, 500)}),
		cand("short", 0.9, short, map[string][]uint64{"x": idRange(0, 500)}),
		cand("other", 0.8, short, map[string][]uint64{"x": idRange(8000, 8500)}),
	}
	plan, err := Route(q, nil, cands, Options{MaxPeers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.Peers, []PeerID{"long", "other"}) {
		t.Fatalf("mixed-length plan = %v, want [long other]", plan.Peers)
	}
}

func TestRoutePlanProperties(t *testing.T) {
	// Plans contain no duplicates and only candidate peers, for random
	// candidate sets in both aggregation modes.
	f := func(seed int64, maxRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		numCands := rng.Intn(8) + 2
		var cands []Candidate
		for i := 0; i < numCands; i++ {
			ids := make([]uint64, rng.Intn(200)+10)
			for j := range ids {
				ids[j] = uint64(rng.Intn(1000))
			}
			cands = append(cands, cand(fmt.Sprintf("p%02d", i), rng.Float64(), testCfg,
				map[string][]uint64{"x": ids}))
		}
		max := int(maxRaw)%numCands + 1
		for _, agg := range []AggregationMode{PerPeer, PerTerm} {
			plan, err := Route(Query{Terms: []string{"x"}}, nil, cands, Options{MaxPeers: max, Aggregation: agg})
			if err != nil {
				return false
			}
			if len(plan.Peers) != max || len(plan.Steps) != max {
				return false
			}
			seen := map[PeerID]bool{}
			valid := map[PeerID]bool{}
			for _, c := range cands {
				valid[c.Peer] = true
			}
			for _, p := range plan.Peers {
				if seen[p] || !valid[p] {
					return false
				}
				seen[p] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteQualityOnlyMatchesCORI(t *testing.T) {
	// With NoveltyWeight 0, IQN degenerates to quality-only ordering —
	// the same plan RouteCORI produces.
	rng := rand.New(rand.NewSource(17))
	var cands []Candidate
	for i := 0; i < 12; i++ {
		ids := make([]uint64, 100)
		for j := range ids {
			ids[j] = uint64(rng.Intn(500))
		}
		cands = append(cands, cand(fmt.Sprintf("p%02d", i), rng.Float64(), testCfg,
			map[string][]uint64{"x": ids}))
	}
	q := Query{Terms: []string{"x"}}
	iqn, err := Route(q, nil, cands, Options{MaxPeers: 6, QualityWeight: 1, NoveltyWeight: 0})
	if err != nil {
		t.Fatal(err)
	}
	coriPlan, err := RouteCORI(q, cands, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(iqn.Peers, coriPlan.Peers) {
		t.Fatalf("quality-only IQN %v != CORI %v", iqn.Peers, coriPlan.Peers)
	}
}

func TestRouteAbsorbOrderInvariance(t *testing.T) {
	// Absorbing A then B yields the same reference as B then A for MIPs
	// (union commutes), so a third candidate's novelty is identical.
	a := cand("a", 1, testCfg, map[string][]uint64{"x": idRange(0, 400)})
	b := cand("b", 1, testCfg, map[string][]uint64{"x": idRange(300, 700)})
	c := cand("c", 1, testCfg, map[string][]uint64{"x": idRange(500, 900)})
	noveltyAfter := func(first, second Candidate) float64 {
		state, err := newReferenceState(Query{Terms: []string{"x"}}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := state.absorb(-1, &first); err != nil {
			t.Fatal(err)
		}
		if _, err := state.absorb(-1, &second); err != nil {
			t.Fatal(err)
		}
		nov, err := state.novelty(-1, &c)
		if err != nil {
			t.Fatal(err)
		}
		return nov
	}
	ab := noveltyAfter(a, b)
	ba := noveltyAfter(b, a)
	if ab != ba {
		t.Fatalf("novelty depends on absorb order: %v vs %v", ab, ba)
	}
}
