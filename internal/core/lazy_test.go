package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"iqn/internal/histogram"
	"iqn/internal/ir"
	"iqn/internal/synopsis"
)

// raiseGOMAXPROCS lifts the scheduler width for the duration of a test
// so Options.Parallelism (capped at GOMAXPROCS) actually fans out even
// on single-CPU machines — the race detector needs the goroutines to
// exist, not physical cores.
func raiseGOMAXPROCS(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// The tests in this file assert the Fast-IQN contract: Route (lazy
// selection, optionally parallel) returns plans byte-identical to
// SelectExhaustive (the original full-rescan reference implementation)
// for every reference-state implementation and synopsis family.

// lazyTestConfigs covers all four synopsis families at the paper's
// 2048-bit budget.
var lazyTestConfigs = []struct {
	name string
	cfg  synopsis.Config
}{
	{"mips", synopsis.Config{Kind: synopsis.KindMIPs, Bits: 2048, Seed: 1234}},
	{"bloom", synopsis.Config{Kind: synopsis.KindBloom, Bits: 2048, BloomHashes: 4}},
	{"hashsketch", synopsis.Config{Kind: synopsis.KindHashSketch, Bits: 2048}},
	{"superloglog", synopsis.Config{Kind: synopsis.KindSuperLogLog, Bits: 2048}},
}

// randPlanCandidates builds n candidates with randomly overlapping ID
// sets, occasional missing terms, and heavily tied qualities (including
// zero), so tie-breaking paths are exercised. withHist additionally
// attaches score histograms to most term synopses, leaving some on the
// plain-synopsis fallback path.
func randPlanCandidates(rng *rand.Rand, cfg synopsis.Config, n int, terms []string, withHist bool) []Candidate {
	cands := make([]Candidate, 0, n)
	for i := 0; i < n; i++ {
		c := Candidate{
			Peer:              PeerID(fmt.Sprintf("p%03d", i)),
			Quality:           float64(rng.Intn(8)) / 4, // many exact ties, some zeros
			TermSynopses:      map[string]synopsis.Set{},
			TermCardinalities: map[string]float64{},
		}
		if withHist {
			c.TermHistograms = map[string]*histogram.Histogram{}
		}
		for _, t := range terms {
			if rng.Float64() < 0.15 {
				continue // missing term: treated as empty set
			}
			span := 100 + rng.Intn(400)
			ids := make([]uint64, 0, span)
			for j := 0; j < span; j++ {
				ids = append(ids, uint64(rng.Intn(3000)))
			}
			c.TermSynopses[t] = cfg.FromIDs(ids)
			c.TermCardinalities[t] = float64(len(ids))
			if withHist && rng.Float64() < 0.8 {
				ps := make([]ir.Posting, len(ids))
				for j, id := range ids {
					ps[j] = ir.Posting{DocID: id, Score: rng.Float64() * 10}
				}
				c.TermHistograms[t] = histogram.Build(ps, 4, cfg)
			}
		}
		cands = append(cands, c)
	}
	return cands
}

// assertSamePlan requires the lazy and exhaustive plans to be identical
// down to the float bits of every Step.
func assertSamePlan(t *testing.T, q Query, initiator *Candidate, cands []Candidate, opts Options) {
	t.Helper()
	exhaustive, errEx := SelectExhaustive(q, initiator, cands, opts)
	lazy, errLazy := Route(q, initiator, cands, opts)
	if (errEx == nil) != (errLazy == nil) {
		t.Fatalf("error disagreement: exhaustive=%v lazy=%v", errEx, errLazy)
	}
	if errEx != nil {
		return
	}
	if !reflect.DeepEqual(exhaustive, lazy) {
		t.Fatalf("plans differ\nexhaustive: %+v\nlazy:       %+v", exhaustive, lazy)
	}
}

func TestLazySelectionMatchesExhaustive(t *testing.T) {
	raiseGOMAXPROCS(t, 8)
	modes := []struct {
		name string
		opts Options
		hist bool
	}{
		{"per-peer", Options{Aggregation: PerPeer}, false},
		{"per-term", Options{Aggregation: PerTerm}, false},
		{"histogram", Options{UseHistograms: true}, true},
	}
	for _, kc := range lazyTestConfigs {
		for _, qt := range []QueryType{Disjunctive, Conjunctive} {
			for _, mode := range modes {
				name := fmt.Sprintf("%s/%s/%s", kc.name, qt, mode.name)
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(len(name)) * 7919))
					cands := randPlanCandidates(rng, kc.cfg, 24, []string{"alpha", "beta"}, mode.hist)
					initiator := cand("self", 0, kc.cfg, map[string][]uint64{"alpha": idRange(0, 300)})
					q := Query{Terms: []string{"alpha", "beta"}, Type: qt}
					for _, par := range []int{0, 4} {
						opts := mode.opts
						opts.MaxPeers = 8
						opts.Parallelism = par
						assertSamePlan(t, q, &initiator, cands, opts)
						assertSamePlan(t, q, nil, cands, opts)
					}
				})
			}
		}
	}
}

func TestLazySelectionMatchesExhaustiveRandomized(t *testing.T) {
	// Property test: random synopsis family, aggregation mode, stopping
	// criteria, score weights (including the exponents that disable or
	// invert a factor) and parallelism must never change the plan.
	raiseGOMAXPROCS(t, 8)
	rng := rand.New(rand.NewSource(20260806))
	weights := []float64{0, 0.5, 1, 2}
	novWeights := []float64{-1, 0, 0.5, 1, 2}
	for trial := 0; trial < 48; trial++ {
		kc := lazyTestConfigs[rng.Intn(len(lazyTestConfigs))]
		opts := Options{
			MaxPeers:      rng.Intn(12), // 0: rank every candidate
			Aggregation:   AggregationMode(rng.Intn(2)),
			UseHistograms: rng.Float64() < 0.25,
			QualityWeight: weights[rng.Intn(len(weights))],
			NoveltyWeight: novWeights[rng.Intn(len(novWeights))],
			Parallelism:   rng.Intn(5),
		}
		if rng.Float64() < 0.3 {
			opts.TargetCoverage = 200 + rng.Float64()*1500
		}
		q := Query{Terms: []string{"alpha", "beta", "gamma"}[:1+rng.Intn(3)], Type: QueryType(rng.Intn(2))}
		cands := randPlanCandidates(rng, kc.cfg, 5+rng.Intn(25), q.Terms, opts.UseHistograms)
		var initiator *Candidate
		if rng.Float64() < 0.5 {
			init := cand("self", 0, kc.cfg, map[string][]uint64{q.Terms[0]: idRange(0, 200)})
			initiator = &init
		}
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			assertSamePlan(t, q, initiator, cands, opts)
		})
	}
}

func TestLazySelectionEdgeCases(t *testing.T) {
	raiseGOMAXPROCS(t, 8)
	cfg := testCfg
	q := Query{Terms: []string{"x"}}
	t.Run("no candidates", func(t *testing.T) {
		assertSamePlan(t, q, nil, nil, Options{MaxPeers: 3})
	})
	t.Run("budget exceeds candidates", func(t *testing.T) {
		cands := []Candidate{
			cand("a", 1, cfg, map[string][]uint64{"x": idRange(0, 100)}),
			cand("b", 1, cfg, map[string][]uint64{"x": idRange(50, 150)}),
		}
		assertSamePlan(t, q, nil, cands, Options{MaxPeers: 10, Parallelism: 3})
	})
	t.Run("candidates without synopses", func(t *testing.T) {
		cands := []Candidate{
			{Peer: "empty-a", Quality: 2},
			{Peer: "empty-b", Quality: 2},
			cand("c", 1, cfg, map[string][]uint64{"x": idRange(0, 100)}),
		}
		assertSamePlan(t, q, nil, cands, Options{MaxPeers: 3})
	})
	t.Run("identical candidates tie-break", func(t *testing.T) {
		ids := idRange(0, 500)
		var cands []Candidate
		for i := 0; i < 6; i++ {
			cands = append(cands, cand(fmt.Sprintf("twin-%d", i), 1, cfg, map[string][]uint64{"x": ids}))
		}
		assertSamePlan(t, q, nil, cands, Options{MaxPeers: 4, Parallelism: 2})
	})
}

// TestRouteParallelRace routes a large candidate set with maximum
// parallelism so `go test -race` exercises the concurrent scoring paths
// of every reference-state implementation.
func TestRouteParallelRace(t *testing.T) {
	raiseGOMAXPROCS(t, 8)
	rng := rand.New(rand.NewSource(7))
	q := Query{Terms: []string{"alpha", "beta"}}
	for _, kc := range lazyTestConfigs {
		for _, opts := range []Options{
			{MaxPeers: 6, Parallelism: 8},
			{MaxPeers: 6, Parallelism: 8, Aggregation: PerTerm},
			{MaxPeers: 6, Parallelism: 8, UseHistograms: true},
		} {
			cands := randPlanCandidates(rng, kc.cfg, 120, q.Terms, opts.UseHistograms)
			if _, err := Route(q, nil, cands, opts); err != nil {
				t.Fatalf("%s: %v", kc.name, err)
			}
		}
	}
}
