package core

// This file implements the Fast-IQN selection engine: a CELF-style
// lazy-greedy Select-Best-Peer with optional parallel scoring.
//
// The exhaustive algorithm re-estimates every remaining candidate's
// novelty each iteration. The lazy engine instead works with two sound
// per-candidate score *ceilings* supplied by the reference state (see
// referenceState.ceiling and staticCeiling):
//
//   - a static ceiling, immutable for the whole call, that dominates the
//     candidate's score against any reference; and
//   - a current ceiling, refined from the candidate's last-evaluation
//     snapshot, that dominates the candidate's score against the present
//     reference.
//
// Before the first round the engine sorts the candidates once into a
// priority order by (static score ceiling descending, sorted index
// ascending). Each round walks that order: candidates whose current
// ceiling could still beat the round's champion are re-evaluated (in
// batches of up to Options.Parallelism, fanned out over that many
// goroutines), and the walk stops at the first candidate whose *static*
// ceiling no longer contends — every candidate after it in the order has
// a static ceiling that is no larger (or ties with a larger index,
// losing the tie-break), and a true score no larger than that, so the
// rest of the order is dominated wholesale. A round therefore touches
// only the prefix of plausibly-best candidates; the ones that never
// plausibly rank first are never combined or scored at all, including in
// the first round.
//
// Ceilings never underestimate the true score, and the champion merge
// uses the same (highest score, then lowest sorted index) ordering as
// the exhaustive scan, so the produced plans are byte-identical — under
// the assumption that scores are never NaN, which holds whenever the
// candidate qualities are not NaN (powWeight maps q ≤ 0 to 0, never to a
// negative Pow base) and synopsis cardinalities are finite. An
// Options.Prior factor preserves all of this: it is folded into the
// per-candidate quality factor qf, which multiplies the exact score and
// every ceiling alike, so bounds scale with scores and stay sound. A NaN
// quality (or NaN prior) disables the lazy path for the whole call —
// counted by route.lazy_disabled and annotated on the span with the
// poisoned candidate; a negative NoveltyWeight does too, because
// powWeight is then anti-monotone in novelty and ceilings would turn
// into floors.
//
// Evaluations are race-free: each one writes only its own candidate
// index, and being value-identical per candidate, the parallel path is
// plan-identical to the serial one.

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// runIQN drives the shared IQN loop with either selection strategy.
func runIQN(q Query, initiator *Candidate, cands []Candidate, opts Options, lazy bool) (Plan, error) {
	var seeds []*Candidate
	if initiator != nil {
		seeds = append(seeds, initiator)
	}
	return runIQNSeeded(q, seeds, cands, opts, lazy)
}

// runIQNSeeded is runIQN with an arbitrary list of reference seeds: every
// seed is absorbed into the reference synopsis before the first
// Select-Best-Peer round, exactly as the initiator is. Reroute uses this
// to resume a routing decision mid-flight — the peers a degraded query
// already reached become seeds, so replacements are scored by the novelty
// they add beyond what the query already covered.
func runIQNSeeded(q Query, seeds []*Candidate, cands []Candidate, opts Options, lazy bool) (Plan, error) {
	if err := validateQuery(q); err != nil {
		return Plan{}, err
	}
	state, err := newReferenceState(q, opts)
	if err != nil {
		return Plan{}, err
	}
	for _, s := range seeds {
		if _, err := state.absorb(-1, s); err != nil {
			return Plan{}, err
		}
	}
	sorted := sortCandidates(cands)
	state.prepare(len(sorted))
	e := &engine{
		state: state,
		cands: sorted,
		opts:  opts,
		// powWeight is monotone in novelty only for non-negative
		// exponents; a negative NoveltyWeight flips the ordering, turning
		// novelty ceilings into score floors, so the engine falls back to
		// exhaustive re-evaluation there.
		lazy: lazy && opts.noveltyWeight() >= 0,
		par:  opts.parallelism(),
	}
	return e.run()
}

// engine holds the per-Route selection state. All per-candidate slices
// are indexed by position in the sorted candidate slice.
type engine struct {
	state referenceState
	cands []Candidate
	opts  Options
	lazy  bool
	par   int

	alive       []bool    // not yet selected
	qf          []float64 // quality^qw, immutable per candidate
	nov         []float64 // last computed novelty
	score       []float64 // last computed exact score qf·nov^nw
	staticBound []float64 // immutable score ceilings qf·staticCeiling^nw
	order       []int     // indices by (staticBound desc, index asc)
	batch       []int     // scratch for one evaluation batch
	left        int       // number of alive candidates

	evals      int // novelty evaluations performed (telemetry)
	roundEvals int // evaluations in the current round (telemetry)
}

func (e *engine) run() (Plan, error) {
	n := len(e.cands)
	e.alive = make([]bool, n)
	e.qf = make([]float64, n)
	e.nov = make([]float64, n)
	e.score = make([]float64, n)
	e.batch = make([]int, 0, e.par)
	qw := e.opts.qualityWeight()
	prior := e.opts.Prior
	for i := range e.cands {
		e.alive[i] = true
		e.qf[i] = powWeight(e.cands[i].Quality, qw)
		if prior != nil {
			// The prior is a constant per-candidate factor on the quality
			// side of the score. Folding it into qf scales the exact score
			// (evalOne) and every ceiling built from qf (buildOrder,
			// selectBest) by the same factor, so the lazy bounds stay sound
			// and the lazy engine remains plan-identical to the exhaustive
			// scan under the same prior.
			f := prior(e.cands[i].Peer)
			if f < 0 {
				f = 0
			} else if math.IsInf(f, 1) {
				f = math.MaxFloat64
			}
			e.qf[i] *= f
		}
		if math.IsNaN(e.qf[i]) && e.lazy {
			// NaN scores break the ceiling ordering, so the whole call
			// degrades to exhaustive rescans. Surface the degradation —
			// it is otherwise silent and costs a full rescan per round —
			// and name the candidate that poisoned the scores.
			e.lazy = false
			if m := e.opts.Metrics; m != nil {
				m.Counter("route.lazy_disabled").Inc()
			}
			e.opts.Span.Set("lazy_disabled", "nan-score")
			e.opts.Span.Setf("lazy_disabled_by", "%s", e.cands[i].Peer)
		}
	}
	e.left = n
	if e.lazy {
		e.buildOrder()
	}

	var plan Plan
	lazySkips := 0
	for e.left > 0 {
		if e.opts.MaxPeers > 0 && len(plan.Peers) >= e.opts.MaxPeers {
			break
		}
		if e.opts.TargetCoverage > 0 && e.state.covered() >= e.opts.TargetCoverage {
			break
		}
		alive := e.left
		e.roundEvals = 0
		best, err := e.selectBest()
		if err != nil {
			return Plan{}, err
		}
		c := &e.cands[best]
		// Aggregate-Synopses: fold the winner into the reference.
		if _, err := e.state.absorb(best, c); err != nil {
			return Plan{}, err
		}
		plan.Peers = append(plan.Peers, c.Peer)
		plan.Steps = append(plan.Steps, Step{
			Peer:    c.Peer,
			Quality: c.Quality,
			Novelty: e.nov[best],
			Score:   e.score[best],
			Covered: e.state.covered(),
		})
		e.alive[best] = false
		e.left--
		skipped := alive - e.roundEvals
		lazySkips += skipped
		if iter := e.opts.Span.Child("iter"); iter != nil {
			iter.Setf("peer", "%s", c.Peer)
			iter.Setf("quality", "%.6g", c.Quality)
			iter.Setf("novelty", "%.6g", e.nov[best])
			iter.Setf("score", "%.6g", e.score[best])
			iter.Setf("covered", "%.6g", e.state.covered())
			iter.SetInt("evaluated", int64(e.roundEvals))
			iter.SetInt("skipped", int64(skipped))
			iter.End()
		}
	}
	if m := e.opts.Metrics; m != nil {
		m.Counter("route.selections").Add(int64(len(plan.Peers)))
		m.Counter("route.candidates").Add(int64(n))
		m.Counter("route.evaluations").Add(int64(e.evals))
		m.Counter("route.lazy_skips").Add(int64(lazySkips))
	}
	return plan, nil
}

// buildOrder computes the immutable static score ceilings and the walk
// order (staticBound descending, index ascending — the order in which
// the exhaustive tie-break would prefer equally-bounded candidates).
func (e *engine) buildOrder() {
	n := len(e.cands)
	nw := e.opts.noveltyWeight()
	e.staticBound = make([]float64, n)
	e.order = make([]int, n)
	for i := range e.cands {
		e.staticBound[i] = scoreBound(e.qf[i], powWeight(e.state.staticCeiling(i, &e.cands[i]), nw))
		e.order[i] = i
	}
	sort.SliceStable(e.order, func(a, b int) bool {
		return e.staticBound[e.order[a]] > e.staticBound[e.order[b]]
	})
}

// selectBest runs one Select-Best-Peer round and returns the winner's
// index.
func (e *engine) selectBest() (int, error) {
	if !e.lazy {
		if err := e.evalAll(); err != nil {
			return -1, err
		}
		champ := -1
		for i, ok := range e.alive {
			if ok {
				champ = e.better(champ, i)
			}
		}
		return champ, nil
	}
	// Ceilings are computed against this round's reference, which only
	// changes on absorb — after the round.
	nw := e.opts.noveltyWeight()
	champ := -1
	batch := e.batch[:0]
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := e.evalBatch(batch); err != nil {
			return err
		}
		// Ascending index order replicates the exhaustive scan's
		// tie-breaking for the freshly evaluated scores.
		sort.Ints(batch)
		for _, i := range batch {
			champ = e.better(champ, i)
		}
		batch = batch[:0]
		return nil
	}
	for _, i := range e.order {
		if !e.alive[i] {
			continue
		}
		if !e.contends(e.staticBound[i], i, champ) {
			// The order is (staticBound desc, index asc): every candidate
			// from here on has a static ceiling that is smaller, or equal
			// with a larger index, so none can beat the champion. (The
			// champion may lag the pending batch here, which only delays
			// this cut-off — never takes it early.)
			break
		}
		cur := scoreBound(e.qf[i], powWeight(e.state.ceiling(i, &e.cands[i]), nw))
		if !e.contends(cur, i, champ) {
			continue
		}
		batch = append(batch, i)
		if len(batch) == e.par {
			if err := flush(); err != nil {
				return -1, err
			}
		}
	}
	if err := flush(); err != nil {
		return -1, err
	}
	return champ, nil
}

// scoreBound multiplies the quality factor into a novelty ceiling. A
// zero quality factor forces the bound to the exact score 0 even against
// an infinite ceiling (0·∞ would be NaN and poison the walk order).
func scoreBound(qf, novBound float64) float64 {
	if qf == 0 {
		return 0
	}
	return qf * novBound
}

// contends reports whether a score ceiling keeps a candidate in the
// running against the current champion: a higher ceiling always does, an
// equal one only from a lower sorted index (which would win the tie).
func (e *engine) contends(bound float64, i, champ int) bool {
	if champ < 0 {
		return true
	}
	return bound > e.score[champ] || (bound == e.score[champ] && i < champ)
}

// better merges a freshly evaluated candidate into the championship under
// the exhaustive scan's ordering: strictly higher score wins, ties keep
// the lower sorted index.
func (e *engine) better(champ, i int) int {
	if champ < 0 || e.score[i] > e.score[champ] || (e.score[i] == e.score[champ] && i < champ) {
		return i
	}
	return champ
}

// evalAll evaluates every alive candidate.
func (e *engine) evalAll() error {
	idxs := make([]int, 0, e.left)
	for i, ok := range e.alive {
		if ok {
			idxs = append(idxs, i)
		}
	}
	return e.evalBatch(idxs)
}

// evalBatch (re)computes novelty and exact score for the given candidate
// indices, fanning out over the engine's worker budget. Each worker
// writes only per-candidate slots, and errors are reported in batch order
// so behavior is deterministic regardless of scheduling.
func (e *engine) evalBatch(idxs []int) error {
	e.evals += len(idxs)
	e.roundEvals += len(idxs)
	nw := e.opts.noveltyWeight()
	if e.par <= 1 || len(idxs) <= 1 {
		for _, i := range idxs {
			if err := e.evalOne(i, nw); err != nil {
				return err
			}
		}
		return nil
	}
	workers := e.par
	if workers > len(idxs) {
		workers = len(idxs)
	}
	errs := make([]error, len(idxs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(idxs) {
					return
				}
				errs[k] = e.evalOne(idxs[k], nw)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// evalOne computes one candidate's novelty and exact score.
func (e *engine) evalOne(i int, nw float64) error {
	nov, err := e.state.novelty(i, &e.cands[i])
	if err != nil {
		return err
	}
	e.nov[i] = nov
	e.score[i] = e.qf[i] * powWeight(nov, nw)
	return nil
}
