package core

import "sort"

// This file implements the comparison methods of the paper's Section 8:
// quality-only CORI routing and the authors' prior SIGIR'05 method [5].

// RouteCORI is the quality-driven baseline: candidates ranked by their
// collection score alone, overlap-blind. This is the paper's main
// comparison method ("among the very best database selection methods for
// distributed IR", Section 8.1).
func RouteCORI(q Query, cands []Candidate, maxPeers int) (Plan, error) {
	if err := validateQuery(q); err != nil {
		return Plan{}, err
	}
	sorted := sortCandidates(cands)
	if maxPeers > 0 && len(sorted) > maxPeers {
		sorted = sorted[:maxPeers]
	}
	var plan Plan
	for _, c := range sorted {
		plan.Peers = append(plan.Peers, c.Peer)
		plan.Steps = append(plan.Steps, Step{Peer: c.Peer, Quality: c.Quality, Score: c.Quality})
	}
	return plan, nil
}

// RoutePrior reimplements the authors' prior overlap-aware method [5]
// (Bender et al., SIGIR 2005) as the paper characterizes it: "only Bloom
// filters and a fairly simple algorithm for aggregating synopses and
// making the actual routing decisions". Concretely:
//
//   - novelty is estimated ONCE per candidate, against the initiator's
//     reference synopsis only — the reference is never re-aggregated as
//     peers are selected, which is exactly the deficit IQN's iterative
//     Aggregate-Synopses step fixes;
//   - candidates are then ranked by the one-shot quality × novelty score.
//
// The synopsis family is whatever the candidates carry (the historical
// method used Bloom filters; the experiments pass them accordingly).
func RoutePrior(q Query, initiator *Candidate, cands []Candidate, opts Options) (Plan, error) {
	if err := validateQuery(q); err != nil {
		return Plan{}, err
	}
	state, err := newReferenceState(q, opts)
	if err != nil {
		return Plan{}, err
	}
	if initiator != nil {
		if _, err := state.absorb(-1, initiator); err != nil {
			return Plan{}, err
		}
	}
	type scored struct {
		c        Candidate
		novelty  float64
		combined float64
	}
	sorted := sortCandidates(cands)
	state.prepare(len(sorted))
	scs := make([]scored, 0, len(sorted))
	for i := range sorted {
		nov, err := state.novelty(i, &sorted[i])
		if err != nil {
			return Plan{}, err
		}
		scs = append(scs, scored{
			c:        sorted[i],
			novelty:  nov,
			combined: powWeight(sorted[i].Quality, opts.qualityWeight()) * powWeight(nov, opts.noveltyWeight()),
		})
	}
	sort.SliceStable(scs, func(i, j int) bool { return scs[i].combined > scs[j].combined })
	if opts.MaxPeers > 0 && len(scs) > opts.MaxPeers {
		scs = scs[:opts.MaxPeers]
	}
	var plan Plan
	for _, s := range scs {
		plan.Peers = append(plan.Peers, s.c.Peer)
		plan.Steps = append(plan.Steps, Step{
			Peer: s.c.Peer, Quality: s.c.Quality, Novelty: s.novelty, Score: s.combined,
		})
	}
	return plan, nil
}
