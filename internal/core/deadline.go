package core

import "time"

// Deadline is an end-to-end time budget for one distributed operation —
// the paper's interactive-search setting made explicit: a query is
// worth answering only within a bounded response time, so every stage
// (directory fetch, routing, fan-out, re-routing) spends from one
// shared budget instead of stacking independent timeouts.
//
// A nil *Deadline means "no budget" and is safe to call through — all
// methods have nil-receiver semantics — so options structs can leave
// budgets unset without changing behavior.
type Deadline struct {
	start time.Time
	total time.Duration
	now   func() time.Time
}

// StartDeadline arms a budget of d starting now, measured on the wall
// clock. d ≤ 0 returns nil (no budget).
func StartDeadline(d time.Duration) *Deadline {
	return StartDeadlineClock(d, nil)
}

// StartDeadlineClock arms a budget of d measured by the given clock
// instead of time.Now, so budget-expiry branches are testable without
// real sleeps: tests inject a fake clock and advance it explicitly. A
// nil clock falls back to time.Now; d ≤ 0 returns nil (no budget).
func StartDeadlineClock(d time.Duration, now func() time.Time) *Deadline {
	if d <= 0 {
		return nil
	}
	if now == nil {
		now = time.Now
	}
	return &Deadline{start: now(), total: d, now: now}
}

// elapsed measures time spent since the budget was armed, on the
// deadline's own clock.
func (d *Deadline) elapsed() time.Duration {
	return d.now().Sub(d.start)
}

// Armed reports whether a budget is in force.
func (d *Deadline) Armed() bool { return d != nil }

// Total returns the budget's full span (0 when unarmed).
func (d *Deadline) Total() time.Duration {
	if d == nil {
		return 0
	}
	return d.total
}

// Remaining returns how much budget is left (0 when expired; 0 when
// unarmed — check Armed to tell the cases apart).
func (d *Deadline) Remaining() time.Duration {
	if d == nil {
		return 0
	}
	r := d.total - d.elapsed()
	if r < 0 {
		return 0
	}
	return r
}

// Expired reports whether an armed budget has run out. An unarmed
// budget never expires.
func (d *Deadline) Expired() bool {
	return d != nil && d.elapsed() >= d.total
}

// Cap bounds a per-attempt timeout by the remaining budget: with no
// budget armed it returns t unchanged; armed, it returns the tighter of
// t and what remains (t ≤ 0 means "no per-attempt timeout", so the
// remainder itself is returned). An expired budget returns a minimal
// positive duration rather than zero, because transports treat a
// non-positive deadline as "none" — the caller should normally check
// Expired first and degrade instead of calling at all.
func (d *Deadline) Cap(t time.Duration) time.Duration {
	if d == nil {
		return t
	}
	r := d.Remaining()
	if r <= 0 {
		return time.Nanosecond
	}
	if t <= 0 || t > r {
		return r
	}
	return t
}
