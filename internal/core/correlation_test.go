package core

import (
	"math"
	"testing"

	"iqn/internal/synopsis"
)

// corrCand builds a candidate whose term lists have controlled overlap:
// x = [0,1000), y = [500,1500) (50% overlap with x), z = [5000,5500)
// (disjoint from both).
func corrCand() Candidate {
	return cand("p", 1, testCfg, map[string][]uint64{
		"x": idRange(0, 1000),
		"y": idRange(500, 1500),
		"z": idRange(5000, 5500),
	})
}

func TestCorrelationMatrix(t *testing.T) {
	c := corrCand()
	m, err := CorrelationMatrix(c, []string{"x", "y", "z", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("%d pairs, want 3", len(m))
	}
	byPair := map[[2]string]TermCorrelation{}
	for _, tc := range m {
		if tc.TermA >= tc.TermB {
			t.Fatalf("pair not ordered: %s/%s", tc.TermA, tc.TermB)
		}
		byPair[[2]string{tc.TermA, tc.TermB}] = tc
	}
	xy := byPair[[2]string{"x", "y"}]
	// True: |x∩y|=500, resemblance 500/1500=0.333.
	if math.Abs(xy.Resemblance-1.0/3) > 0.12 {
		t.Fatalf("x/y resemblance = %v, want ≈0.33", xy.Resemblance)
	}
	if math.Abs(xy.Overlap-500) > 180 {
		t.Fatalf("x/y overlap = %v, want ≈500", xy.Overlap)
	}
	xz := byPair[[2]string{"x", "z"}]
	if xz.Overlap > 120 {
		t.Fatalf("x/z overlap = %v, want ≈0", xz.Overlap)
	}
}

func TestCorrelationMatrixSkipsMissingSynopses(t *testing.T) {
	c := corrCand()
	delete(c.TermSynopses, "y")
	m, err := CorrelationMatrix(c, []string{"x", "y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 { // only x/z remains
		t.Fatalf("%d pairs, want 1", len(m))
	}
}

func TestEstimateConjunctiveCardinality(t *testing.T) {
	c := corrCand()
	// x∧y: true 500.
	est, err := EstimateConjunctiveCardinality(c, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-500) > 200 {
		t.Fatalf("x∧y estimate = %v, want ≈500", est)
	}
	// x∧z: true 0.
	est, err = EstimateConjunctiveCardinality(c, []string{"x", "z"})
	if err != nil {
		t.Fatal(err)
	}
	if est > 150 {
		t.Fatalf("x∧z estimate = %v, want ≈0", est)
	}
	// Single term: the published length.
	est, err = EstimateConjunctiveCardinality(c, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if est != 1000 {
		t.Fatalf("single-term estimate = %v, want 1000", est)
	}
	// Missing synopsis: conjunction unverifiable → 0.
	delete(c.TermSynopses, "y")
	est, err = EstimateConjunctiveCardinality(c, []string{"x", "y"})
	if err != nil || est != 0 {
		t.Fatalf("missing-term estimate = %v, %v", est, err)
	}
	// Empty query.
	if est, _ := EstimateConjunctiveCardinality(corrCand(), nil); est != 0 {
		t.Fatalf("empty query estimate = %v", est)
	}
}

func TestEstimateConjunctiveCardinalityChain(t *testing.T) {
	// Three terms with a nested structure: w ⊃ v ⊃ u. True conj = |u|.
	c := cand("p", 1, testCfg, map[string][]uint64{
		"w": idRange(0, 2000),
		"v": idRange(0, 1000),
		"u": idRange(0, 250),
	})
	est, err := EstimateConjunctiveCardinality(c, []string{"w", "v", "u"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-250) > 150 {
		t.Fatalf("nested conj estimate = %v, want ≈250", est)
	}
}

func TestRecommend(t *testing.T) {
	// Heterogeneous lengths force MIPs regardless of anything else.
	r := Recommend(Scenario{HeterogeneousLengths: true, ConjunctiveQueries: true, TypicalListLength: 10})
	if r.Config.Kind != synopsis.KindMIPs {
		t.Fatalf("heterogeneous: %v", r.Config.Kind)
	}
	// Cardinality-only: super-LogLog.
	r = Recommend(Scenario{CardinalityOnly: true})
	if r.Config.Kind != synopsis.KindSuperLogLog {
		t.Fatalf("cardinality-only: %v", r.Config.Kind)
	}
	// Conjunctive with small lists and room: Bloom with sane k.
	r = Recommend(Scenario{ConjunctiveQueries: true, TypicalListLength: 100, MaxBitsPerTerm: 4096})
	if r.Config.Kind != synopsis.KindBloom {
		t.Fatalf("conjunctive small: %v", r.Config.Kind)
	}
	if r.Config.BloomHashes < 1 || r.Config.Bits < 800 {
		t.Fatalf("bloom config: %+v", r.Config)
	}
	// Conjunctive with huge lists: budget can't hold a filter → MIPs.
	r = Recommend(Scenario{ConjunctiveQueries: true, TypicalListLength: 1_000_000, MaxBitsPerTerm: 4096})
	if r.Config.Kind != synopsis.KindMIPs {
		t.Fatalf("conjunctive overloaded: %v", r.Config.Kind)
	}
	// Default: MIPs sized for the error target. se=0.05 → ≥100 perms.
	r = Recommend(Scenario{TargetError: 0.05})
	if r.Config.Kind != synopsis.KindMIPs {
		t.Fatalf("default kind: %v", r.Config.Kind)
	}
	if perms := r.Config.Bits / 32; perms < 100 {
		t.Fatalf("perms = %d for se 0.05, want ≥100", perms)
	}
	// The budget cap binds.
	r = Recommend(Scenario{TargetError: 0.01, MaxBitsPerTerm: 1024})
	if r.Config.Bits > 1024 {
		t.Fatalf("cap violated: %d bits", r.Config.Bits)
	}
	// Every recommendation explains itself and builds a working synopsis.
	for _, s := range []Scenario{
		{}, {HeterogeneousLengths: true}, {CardinalityOnly: true},
		{ConjunctiveQueries: true, TypicalListLength: 50},
	} {
		rec := Recommend(s)
		if rec.Rationale == "" {
			t.Fatalf("no rationale for %+v", s)
		}
		set := rec.Config.New()
		set.Add(42)
		if set.Cardinality() != 1 {
			t.Fatalf("recommended config unusable: %+v", rec.Config)
		}
	}
}

func TestRoundUpPow2(t *testing.T) {
	for in, want := range map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 64: 64, 100: 128} {
		if got := roundUpPow2(in); got != want {
			t.Errorf("roundUpPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
