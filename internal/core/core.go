// Package core implements IQN routing, the paper's primary contribution
// (Section 5): an iterative query-routing algorithm that reconciles the
// expected result *quality* of candidate peers (a CORI collection score)
// with their expected *novelty* (how many result documents they add
// beyond what already-selected peers cover), estimated purely from the
// compact per-term synopses peers publish to the DHT directory.
//
// Each iteration performs two steps:
//
//   - Select-Best-Peer: rank the remaining candidates by
//     quality × novelty against the current reference synopsis and pick
//     the best;
//   - Aggregate-Synopses: fold the chosen peer's synopsis into the
//     reference synopsis, so the next iteration measures novelty against
//     everything selected so far (including the query initiator's own
//     local result, which seeds the reference).
//
// The loop stops when a peer budget is exhausted or the estimated covered
// result cardinality reaches a target. Multi-keyword queries are handled
// by either of the paper's two synopsis-aggregation strategies
// (Section 6): per-peer (combine a peer's term synopses first, then
// estimate one novelty) or per-term (estimate novelty per term and sum).
// Section 7.1's score-conscious histogram variant plugs in as a third
// aggregation mode.
package core

import (
	"fmt"
	"runtime"
	"sort"

	"iqn/internal/histogram"
	"iqn/internal/synopsis"
	"iqn/internal/telemetry"
)

// PeerID names a peer; in MINERVA it doubles as the peer's transport
// address.
type PeerID string

// QueryType selects the execution model of Section 6.1, which determines
// how per-term synopses combine into a per-peer synopsis.
type QueryType int

const (
	// Disjunctive queries match documents containing any query term;
	// per-term synopses combine by union.
	Disjunctive QueryType = iota
	// Conjunctive queries require all query terms; per-term synopses
	// combine by intersection (exact for Bloom filters, the conservative
	// max-heuristic for MIPs, and the crude union fallback for hash
	// sketches, which have no known intersection).
	Conjunctive
)

// String names the query type.
func (t QueryType) String() string {
	if t == Conjunctive {
		return "conjunctive"
	}
	return "disjunctive"
}

// Query is the routing input: the keywords (or attribute-value
// conditions) and the execution model.
type Query struct {
	// Terms are the distinct query keywords.
	Terms []string
	// Type is the execution model.
	Type QueryType
}

// Candidate is everything the router knows about one prospective peer,
// assembled from the directory's PeerList entries for the query terms
// before the first iteration. Routing never contacts candidate peers —
// the paper's central efficiency property.
type Candidate struct {
	// Peer identifies the candidate.
	Peer PeerID
	// Quality is the peer's collection score for the query (CORI in the
	// paper, Section 5.1). Any non-negative scale works; only ratios
	// between candidates matter.
	Quality float64
	// TermSynopses holds the peer's published synopsis per query term.
	// Missing terms are treated as empty sets.
	TermSynopses map[string]synopsis.Set
	// TermCardinalities holds the published index-list length per query
	// term (the |S_B| of the novelty formula). Missing entries fall back
	// to the synopsis estimate.
	TermCardinalities map[string]float64
	// TermHistograms optionally holds the Section 7.1 score-histogram
	// synopses; used only when Options.UseHistograms is set.
	TermHistograms map[string]*histogram.Histogram
}

// AggregationMode selects how multi-keyword queries aggregate per-term
// synopses (Section 6).
type AggregationMode int

const (
	// PerPeer combines each peer's term synopses into one query-specific
	// synopsis first (Section 6.2).
	PerPeer AggregationMode = iota
	// PerTerm keeps term-specific reference synopses and sums the
	// term-wise novelties (Section 6.3) — no intersections needed even
	// for conjunctive queries.
	PerTerm
)

// String names the aggregation mode.
func (m AggregationMode) String() string {
	if m == PerTerm {
		return "per-term"
	}
	return "per-peer"
}

// Options tune a Route call.
type Options struct {
	// MaxPeers stops after selecting this many peers (≤ 0: no limit, all
	// candidates are ranked).
	MaxPeers int
	// TargetCoverage stops once the estimated covered result cardinality
	// reaches this value (≤ 0: ignored) — the paper's "combined query
	// result has at least a certain number of documents" criterion.
	TargetCoverage float64
	// Aggregation selects per-peer or per-term synopsis aggregation.
	Aggregation AggregationMode
	// QualityWeight and NoveltyWeight are the exponents of the ranking
	// score quality^qw · novelty^nw. Both default to 1 (the paper ranks
	// by the plain product). Set QualityWeight to 0 for novelty-only
	// selection, NoveltyWeight to 0 to degrade IQN to quality-only.
	QualityWeight, NoveltyWeight float64
	// UseHistograms enables the Section 7.1 score-conscious novelty
	// estimation from Candidate.TermHistograms. Implies per-term
	// reference maintenance.
	UseHistograms bool
	// Parallelism caps the number of goroutines used to score candidates
	// (the first-round fan-out and each batch of lazy re-evaluations).
	// Values ≤ 1 keep routing single-threaded; larger values are capped
	// at GOMAXPROCS. Parallel and serial routing produce identical plans.
	Parallelism int
	// Span, when set, receives one "iter" child per Select-Best-Peer
	// round annotated with the winner's quality/novelty/score/covered
	// values and the round's evaluated vs lazily-skipped candidate
	// counts. Nil (the default) traces nothing; the annotations are
	// deterministic functions of the routing inputs, never of timing.
	Span *telemetry.Span
	// Metrics, when set, counts routing work: route.selections,
	// route.candidates, route.evaluations (novelty estimations actually
	// performed), route.lazy_skips (evaluations the lazy engine's
	// ceilings proved unnecessary), and route.lazy_disabled (calls where
	// a NaN score forced the lazy engine back to exhaustive rescans).
	// Nil leaves routing uncounted.
	Metrics *telemetry.Registry
	// Prior, when set, returns a per-peer multiplier folded into each
	// candidate's quality factor before ranking, so selection ranks by
	// prior · quality^qw · novelty^nw. It biases routing toward peers
	// that historically delivered merged top-k entries (and away from
	// peers caught publishing inflated synopses) without touching the
	// synopsis-side novelty machinery: because the factor is constant per
	// candidate, every lazy score ceiling scales with the exact score and
	// Fast-IQN stays byte-identical to the exhaustive reference with the
	// same prior. The function must be deterministic for the duration of
	// the call and should return finite non-negative values: negative
	// results are clamped to 0, +Inf is clamped to MaxFloat64, and NaN
	// disables the lazy engine for the whole call (counted by
	// route.lazy_disabled). Nil means no prior (factor 1 everywhere).
	Prior func(PeerID) float64
}

// parallelism resolves the Parallelism option to an effective worker
// count in [1, GOMAXPROCS].
func (o Options) parallelism() int {
	p := o.Parallelism
	if p < 1 {
		return 1
	}
	if g := runtime.GOMAXPROCS(0); p > g {
		p = g
	}
	return p
}

func (o Options) qualityWeight() float64 {
	if o.QualityWeight == 0 && o.NoveltyWeight == 0 {
		return 1
	}
	return o.QualityWeight
}

func (o Options) noveltyWeight() float64 {
	if o.QualityWeight == 0 && o.NoveltyWeight == 0 {
		return 1
	}
	return o.NoveltyWeight
}

// Step records one IQN iteration for diagnostics and experiments.
type Step struct {
	// Peer is the selected peer.
	Peer PeerID
	// Quality and Novelty are the factors at selection time.
	Quality, Novelty float64
	// Score is the combined ranking score quality^qw · novelty^nw,
	// scaled by the Options.Prior factor when one is set.
	Score float64
	// Covered is the estimated cardinality of the covered result space
	// after absorbing the peer.
	Covered float64
}

// Plan is a routing decision: the peers to forward the query to, in
// selection order, with per-iteration diagnostics.
type Plan struct {
	// Peers lists the selected peers in selection order.
	Peers []PeerID
	// Steps carries the per-iteration diagnostics, parallel to Peers.
	Steps []Step
}

// sortCandidates orders candidates deterministically (by descending
// quality, then peer ID) so ties break identically run-to-run.
func sortCandidates(cands []Candidate) []Candidate {
	// Sort an index permutation rather than the slice: Candidate is a
	// large struct, and moving indices instead of structs keeps the sort
	// out of the routing hot path. The final index tie-break makes the
	// order fully deterministic even for duplicate (quality, peer) keys.
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ca, cb := &cands[idx[a]], &cands[idx[b]]
		if ca.Quality != cb.Quality {
			return ca.Quality > cb.Quality
		}
		if ca.Peer != cb.Peer {
			return ca.Peer < cb.Peer
		}
		return idx[a] < idx[b]
	})
	out := make([]Candidate, len(cands))
	for i, j := range idx {
		out[i] = cands[j]
	}
	return out
}

// validateQuery rejects routing without terms.
func validateQuery(q Query) error {
	if len(q.Terms) == 0 {
		return fmt.Errorf("core: query has no terms")
	}
	return nil
}
