package core

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strings"
	"testing"

	"iqn/internal/telemetry"
)

// The tests in this file cover the Options.Prior hook (the adaptive
// routing blend) and the route.lazy_disabled degradation telemetry.

// hashPrior is a deterministic, peer-dependent prior in (0.5, 2.5) —
// enough spread to reorder plans without zeroing anyone out.
func hashPrior(p PeerID) float64 {
	h := fnv.New32a()
	h.Write([]byte(p))
	return 0.5 + 2*float64(h.Sum32()%1000)/1000
}

func TestPriorLazyMatchesExhaustive(t *testing.T) {
	// The acceptance bar for the prior hook: Fast-IQN must stay
	// bit-identical to the exhaustive reference with the same prior, for
	// every synopsis family, aggregation mode, and parallelism setting.
	raiseGOMAXPROCS(t, 8)
	rng := rand.New(rand.NewSource(20260808))
	weights := []float64{0, 0.5, 1, 2}
	novWeights := []float64{-1, 0, 0.5, 1, 2}
	for trial := 0; trial < 48; trial++ {
		kc := lazyTestConfigs[rng.Intn(len(lazyTestConfigs))]
		opts := Options{
			MaxPeers:      rng.Intn(12),
			Aggregation:   AggregationMode(rng.Intn(2)),
			UseHistograms: rng.Float64() < 0.25,
			QualityWeight: weights[rng.Intn(len(weights))],
			NoveltyWeight: novWeights[rng.Intn(len(novWeights))],
			Parallelism:   rng.Intn(5),
			Prior:         hashPrior,
		}
		if rng.Float64() < 0.3 {
			opts.TargetCoverage = 200 + rng.Float64()*1500
		}
		q := Query{Terms: []string{"alpha", "beta", "gamma"}[:1+rng.Intn(3)], Type: QueryType(rng.Intn(2))}
		cands := randPlanCandidates(rng, kc.cfg, 5+rng.Intn(25), q.Terms, opts.UseHistograms)
		var initiator *Candidate
		if rng.Float64() < 0.5 {
			init := cand("self", 0, kc.cfg, map[string][]uint64{q.Terms[0]: idRange(0, 200)})
			initiator = &init
		}
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			assertSamePlan(t, q, initiator, cands, opts)
		})
	}
}

func TestPriorBiasesSelection(t *testing.T) {
	// Two byte-identical candidates: without a prior the tie breaks to
	// the lexicographically smaller peer; a prior favoring the other
	// must flip the selection (and scale the winning Step.Score).
	cfg := testCfg
	ids := idRange(0, 400)
	cands := []Candidate{
		cand("peer-a", 1, cfg, map[string][]uint64{"x": ids}),
		cand("peer-b", 1, cfg, map[string][]uint64{"x": ids}),
	}
	q := Query{Terms: []string{"x"}}

	cold, err := Route(q, nil, cands, Options{MaxPeers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Peers) != 1 || cold.Peers[0] != "peer-a" {
		t.Fatalf("cold plan = %v, want the tie broken to peer-a", cold.Peers)
	}

	prior := func(p PeerID) float64 {
		if p == "peer-b" {
			return 3
		}
		return 1
	}
	warm, err := Route(q, nil, cands, Options{MaxPeers: 1, Prior: prior})
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Peers) != 1 || warm.Peers[0] != "peer-b" {
		t.Fatalf("warm plan = %v, want the boosted peer-b", warm.Peers)
	}
	if warm.Steps[0].Score != 3*cold.Steps[0].Score {
		t.Fatalf("boosted score = %g, want 3× the cold score %g", warm.Steps[0].Score, cold.Steps[0].Score)
	}
	assertSamePlan(t, q, nil, cands, Options{MaxPeers: 1, Prior: prior})
}

func TestPriorClamping(t *testing.T) {
	cfg := testCfg
	q := Query{Terms: []string{"x"}}
	cands := []Candidate{
		cand("strong", 5, cfg, map[string][]uint64{"x": idRange(0, 500)}),
		cand("weak", 1, cfg, map[string][]uint64{"x": idRange(500, 600)}),
	}
	t.Run("negative clamps to zero", func(t *testing.T) {
		prior := func(p PeerID) float64 {
			if p == "strong" {
				return -7 // hostile prior: must zero, not invert, the score
			}
			return 1
		}
		plan, err := Route(q, nil, cands, Options{MaxPeers: 1, Prior: prior})
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Peers) != 1 || plan.Peers[0] != "weak" {
			t.Fatalf("plan = %v, want the un-penalized weak peer", plan.Peers)
		}
		assertSamePlan(t, q, nil, cands, Options{MaxPeers: 1, Prior: prior})
	})
	t.Run("positive infinity clamps finite", func(t *testing.T) {
		prior := func(p PeerID) float64 {
			if p == "weak" {
				return math.Inf(1)
			}
			return 1
		}
		plan, err := Route(q, nil, cands, Options{MaxPeers: 2, Prior: prior})
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Peers) != 2 || plan.Peers[0] != "weak" {
			t.Fatalf("plan = %v, want weak boosted to the front", plan.Peers)
		}
		for _, s := range plan.Steps {
			if math.IsNaN(s.Score) {
				t.Fatalf("infinite prior leaked a NaN score: %+v", s)
			}
		}
		assertSamePlan(t, q, nil, cands, Options{MaxPeers: 2, Prior: prior})
	})
}

// plansBitEqual compares plans down to the float bits of every Step —
// unlike reflect.DeepEqual it treats identical NaN payloads as equal,
// which the NaN regression below needs.
func plansBitEqual(a, b Plan) bool {
	if len(a.Peers) != len(b.Peers) || len(a.Steps) != len(b.Steps) {
		return false
	}
	for i := range a.Peers {
		if a.Peers[i] != b.Peers[i] {
			return false
		}
	}
	for i := range a.Steps {
		x, y := a.Steps[i], b.Steps[i]
		if x.Peer != y.Peer ||
			math.Float64bits(x.Quality) != math.Float64bits(y.Quality) ||
			math.Float64bits(x.Novelty) != math.Float64bits(y.Novelty) ||
			math.Float64bits(x.Score) != math.Float64bits(y.Score) ||
			math.Float64bits(x.Covered) != math.Float64bits(y.Covered) {
			return false
		}
	}
	return true
}

// TestNaNQualityLazyDisabledTelemetry is the regression test for the
// silent lazy-engine degradation: a NaN candidate quality must disable
// the lazy path for the whole call, and that fact must surface as a
// route.lazy_disabled counter tick plus span annotations naming the
// poisoned candidate — while the produced plan still matches the
// exhaustive reference end-to-end through Route.
func TestNaNQualityLazyDisabledTelemetry(t *testing.T) {
	cfg := testCfg
	q := Query{Terms: []string{"x"}}
	cands := []Candidate{
		cand("good-a", 2, cfg, map[string][]uint64{"x": idRange(0, 300)}),
		cand("poisoned", math.NaN(), cfg, map[string][]uint64{"x": idRange(300, 600)}),
		cand("good-b", 1, cfg, map[string][]uint64{"x": idRange(600, 700)}),
	}
	reg := telemetry.NewRegistry()
	trace := telemetry.NewTrace("nan-test", "route")
	opts := Options{MaxPeers: 3, Metrics: reg, Span: trace.Root()}
	plan, err := Route(q, nil, cands, opts)
	if err != nil {
		t.Fatal(err)
	}
	exhaustive, err := SelectExhaustive(q, nil, cands, Options{MaxPeers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !plansBitEqual(plan, exhaustive) {
		t.Fatalf("NaN-degraded plan differs from exhaustive\nlazy:       %+v\nexhaustive: %+v", plan, exhaustive)
	}
	if got := reg.Counter("route.lazy_disabled").Value(); got != 1 {
		t.Fatalf("route.lazy_disabled = %d, want 1", got)
	}
	canon := trace.Canonical()
	if !strings.Contains(canon, "lazy_disabled=nan-score") {
		t.Fatalf("trace missing lazy_disabled annotation:\n%s", canon)
	}
	if !strings.Contains(canon, "lazy_disabled_by=poisoned") {
		t.Fatalf("trace does not identify the poisoned candidate:\n%s", canon)
	}

	// A clean rerun of the same shape must not tick the counter: the
	// counter isolates NaN degradations, not lazy routing in general.
	clean := []Candidate{
		cand("good-a", 2, cfg, map[string][]uint64{"x": idRange(0, 300)}),
		cand("good-b", 1, cfg, map[string][]uint64{"x": idRange(600, 700)}),
	}
	if _, err := Route(q, nil, clean, Options{MaxPeers: 2, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("route.lazy_disabled").Value(); got != 1 {
		t.Fatalf("route.lazy_disabled after clean route = %d, want still 1", got)
	}

	// A NaN prior poisons scores the same way and must be counted too.
	nanPrior := func(p PeerID) float64 {
		if p == "good-b" {
			return math.NaN()
		}
		return 1
	}
	if _, err := Route(q, nil, clean, Options{MaxPeers: 2, Metrics: reg, Prior: nanPrior}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("route.lazy_disabled").Value(); got != 2 {
		t.Fatalf("route.lazy_disabled after NaN prior = %d, want 2", got)
	}
}
