package core

import (
	"sort"

	"iqn/internal/synopsis"
)

// This file implements the paper's second future-work direction
// (Section 9): "incorporating statistics about correlations between
// different index lists on the same peer … into the synopses
// management". The per-term synopses a peer publishes already contain
// everything needed to estimate how correlated two of its index lists
// are — their resemblance — and that correlation sharpens the combined
// cardinality estimates conjunctive routing depends on.

// TermCorrelation is the estimated relationship between two index lists
// of the same peer.
type TermCorrelation struct {
	// TermA and TermB name the lists (TermA < TermB lexicographically).
	TermA, TermB string
	// Resemblance is the synopsis-estimated |A∩B| / |A∪B|.
	Resemblance float64
	// Overlap is the derived |A∩B| using the published list lengths.
	Overlap float64
}

// CorrelationMatrix estimates the pair-wise correlations between a
// candidate's index lists for the given terms, from its published
// synopses alone. Terms without a synopsis are skipped. The result is
// sorted by (TermA, TermB).
func CorrelationMatrix(c Candidate, terms []string) ([]TermCorrelation, error) {
	uniq := make([]string, 0, len(terms))
	seen := map[string]struct{}{}
	for _, t := range terms {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		if c.TermSynopses[t] != nil {
			uniq = append(uniq, t)
		}
	}
	sort.Strings(uniq)
	var out []TermCorrelation
	for i := 0; i < len(uniq); i++ {
		for j := i + 1; j < len(uniq); j++ {
			a, b := uniq[i], uniq[j]
			r, err := c.TermSynopses[a].Resemblance(c.TermSynopses[b])
			if err != nil {
				return nil, err
			}
			cardA := c.termCard(a)
			cardB := c.termCard(b)
			out = append(out, TermCorrelation{
				TermA:       a,
				TermB:       b,
				Resemblance: r,
				Overlap:     synopsis.OverlapFromResemblance(r, cardA, cardB),
			})
		}
	}
	return out, nil
}

// termCard returns the published cardinality of a term's list, falling
// back to the synopsis estimate.
func (c Candidate) termCard(t string) float64 {
	if card, ok := c.TermCardinalities[t]; ok {
		return card
	}
	if s := c.TermSynopses[t]; s != nil {
		return s.Cardinality()
	}
	return 0
}

// EstimateConjunctiveCardinality estimates how many of the candidate's
// documents match ALL the given terms, by chaining pair-wise overlap
// estimates: starting from the rarest term's list, each further term t
// keeps the fraction Containment(t_prev…, t) ≈ overlap/|prev| of the
// running estimate. This is the correlation-aware refinement of the
// crude "cardinality of the heuristic intersection synopsis" that plain
// per-peer aggregation uses; it assumes conditional independence beyond
// pair-wise overlaps (the usual selectivity-estimation compromise).
//
// Terms without synopses make the conjunction impossible to verify;
// they degrade the estimate to 0 exactly as combinePerPeer treats a
// missing term.
func EstimateConjunctiveCardinality(c Candidate, terms []string) (float64, error) {
	uniq := make([]string, 0, len(terms))
	seen := map[string]struct{}{}
	for _, t := range terms {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		uniq = append(uniq, t)
	}
	if len(uniq) == 0 {
		return 0, nil
	}
	for _, t := range uniq {
		if c.TermSynopses[t] == nil {
			return 0, nil
		}
	}
	// Rarest-first ordering minimizes the running estimate early, which
	// keeps the independence error one-sided and small.
	sort.Slice(uniq, func(i, j int) bool {
		ci, cj := c.termCard(uniq[i]), c.termCard(uniq[j])
		if ci != cj {
			return ci < cj
		}
		return uniq[i] < uniq[j]
	})
	est := c.termCard(uniq[0])
	if len(uniq) == 1 || est == 0 {
		return est, nil
	}
	prev := uniq[0]
	prevCard := est
	for _, t := range uniq[1:] {
		r, err := c.TermSynopses[prev].Resemblance(c.TermSynopses[t])
		if err != nil {
			return 0, err
		}
		overlap := synopsis.OverlapFromResemblance(r, prevCard, c.termCard(t))
		if prevCard <= 0 {
			return 0, nil
		}
		frac := overlap / prevCard
		if frac > 1 {
			frac = 1
		}
		est *= frac
		prev = t
		prevCard = c.termCard(t)
	}
	return est, nil
}
