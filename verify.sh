#!/bin/sh
# Repo verification gate: formatting, static analysis, build, and the
# full test suite under the race detector. Run before every commit.
set -eu

cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test -race ./...

echo "verify.sh: all checks passed"
