// Package iqn is a from-scratch Go reproduction of "IQN Routing:
// Integrating Quality and Novelty in P2P Querying and Ranking" (Michel,
// Bender, Triantafillou, Weikum; EDBT 2006) — the MINERVA P2P web-search
// engine's overlap-aware query routing.
//
// The implementation lives under internal/:
//
//   - internal/synopsis — Bloom filters, min-wise permutations, hash
//     sketches, with resemblance/novelty estimators (paper Section 3)
//   - internal/chord — the Chord DHT the directory is layered on
//   - internal/transport — in-process and TCP RPC, plus deterministic
//     fault injection (transport.Faulty: seeded per-link drop / delay /
//     duplicate / error / one-way partition / crash-on-Nth-call rules
//     with a byte-for-byte replayable fault schedule) and retry with
//     capped exponential backoff, deterministic jitter, and per-call
//     timeouts (transport.RetryPolicy)
//   - internal/directory — the term-partitioned PeerList directory
//   - internal/ir, internal/cori — local IR engine and CORI selection
//   - internal/core — the IQN routing algorithm itself (Sections 5–7),
//     with the Fast-IQN lazy-greedy selection engine: sound per-family
//     score ceilings prune candidate re-estimation while producing
//     plans byte-identical to the exhaustive reference scan
//     (core.SelectExhaustive), optionally fanning evaluations out over
//     core.Options.Parallelism goroutines
//   - internal/histogram — score-conscious synopses (Section 7.1)
//   - internal/topk — threshold-algorithm PeerList trimming
//   - internal/minerva — the peer engine tying everything together
//   - internal/dataset, internal/eval — workloads and the experiment
//     harness regenerating every figure of the paper
//   - internal/sim — scenario-driven chaos simulation: scripted fault
//     schedules (kill, partition, slow link, stale directory entries)
//     driven through a full in-process network, with invariants for
//     deadlock-freedom, loud degradation (lost peers are reported in
//     SearchResult.Errors, never silently dropped), and recall bounds
//     against a fault-free twin run
//
// Entry points: cmd/minerva (run a network), cmd/iqnbench (regenerate
// the paper's figures), cmd/synopsize (synopsis workbench), and the
// runnable scenarios under examples/. The benchmark harness in
// bench_test.go has one testing.B target per figure and per design
// choice; see DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results.
package iqn
