module iqn

go 1.22
