// Command minerva boots a MINERVA network in one process and runs a
// query workload through it, printing per-query routing plans, results,
// and recall — the quickest way to watch IQN routing work end to end.
//
// Usage:
//
//	minerva -peers 20 -docs 10000 -query "forest fire"   # ad-hoc query
//	minerva -method cori -maxpeers 5                     # baseline routing
//	minerva -transport tcp                               # real sockets
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"iqn/internal/core"
	"iqn/internal/dataset"
	"iqn/internal/ir"
	"iqn/internal/minerva"
	"iqn/internal/synopsis"
	"iqn/internal/transport"
)

func main() {
	var (
		docs      = flag.Int("docs", 10000, "corpus size")
		frags     = flag.Int("fragments", 40, "fragments for the sliding-window assignment")
		r         = flag.Int("r", 8, "fragments per peer")
		offset    = flag.Int("offset", 2, "sliding-window offset (peers = fragments/offset)")
		kindFlag  = flag.String("synopsis", "mips", "synopsis kind: mips|bloom|hashsketch (or bf|hs)")
		bits      = flag.Int("bits", 2048, "synopsis bits per term")
		hist      = flag.Int("histcells", 0, "score-histogram cells per term (0: plain synopses)")
		methodStr = flag.String("method", "iqn", "routing method: iqn|cori|prior")
		agg       = flag.String("agg", "per-peer", "multi-keyword aggregation: per-peer|per-term")
		maxPeers  = flag.Int("maxpeers", 5, "peers to forward each query to")
		k         = flag.Int("k", 20, "result-list depth per peer")
		conj      = flag.Bool("conjunctive", false, "conjunctive query model")
		queryStr  = flag.String("query", "", "space-separated query terms (default: generated workload)")
		numQ      = flag.Int("queries", 5, "generated workload size when -query is empty")
		seed      = flag.Int64("seed", 42, "master seed")
		useTCP    = flag.String("transport", "inmem", "transport: inmem|tcp")
		basePort  = flag.Int("baseport", 39500, "first TCP port when -transport tcp")
		httpAddr  = flag.String("http", "", "serve the first peer's HTTP search API on this address after the workload (e.g. :8080)")
	)
	flag.Parse()

	kind, err := synopsis.ParseKind(*kindFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "minerva:", err)
		os.Exit(2)
	}
	var method minerva.Method
	switch *methodStr {
	case "iqn":
		method = minerva.MethodIQN
	case "cori":
		method = minerva.MethodCORI
	case "prior":
		method = minerva.MethodPrior
	default:
		fmt.Fprintf(os.Stderr, "minerva: unknown method %q\n", *methodStr)
		os.Exit(2)
	}
	aggregation := core.PerPeer
	if *agg == "per-term" {
		aggregation = core.PerTerm
	}

	fmt.Printf("generating corpus: %d docs, seed %d\n", *docs, *seed)
	corpus := dataset.Generate(dataset.CorpusConfig{NumDocs: *docs, Seed: *seed})
	cols := dataset.AssignSlidingWindow(corpus, *frags, *r, *offset)
	fmt.Printf("assigning %d peers (sliding window over %d fragments, r=%d, offset=%d)\n",
		len(cols), *frags, *r, *offset)

	var net transport.Network
	switch *useTCP {
	case "tcp":
		tcp := transport.NewTCP()
		defer tcp.CloseIdle()
		net = tcp
		for i := range cols {
			cols[i].Name = fmt.Sprintf("127.0.0.1:%d", *basePort+i)
		}
	default:
		net = transport.NewInMem()
	}

	fmt.Printf("booting network (%s transport, %s %d-bit synopses)...\n", *useTCP, kind, *bits)
	network, err := minerva.BuildNetwork(net, corpus, cols, minerva.Config{
		SynopsisKind:   kind,
		SynopsisBits:   *bits,
		SynopsisSeed:   uint64(*seed),
		HistogramCells: *hist,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "minerva:", err)
		os.Exit(1)
	}
	defer network.Close()

	var queries []dataset.Query
	if *queryStr != "" {
		queries = []dataset.Query{{ID: 1, Terms: strings.Fields(*queryStr)}}
	} else {
		queries = dataset.GenerateQueries(corpus, dataset.QueryConfig{Count: *numQ, Seed: *seed})
	}

	opts := minerva.SearchOptions{
		K:             *k,
		MaxPeers:      *maxPeers,
		Method:        method,
		Aggregation:   aggregation,
		Conjunctive:   *conj,
		UseHistograms: *hist > 0,
	}
	var sumRecall float64
	for qi, q := range queries {
		initiator := network.Peers[qi%len(network.Peers)]
		res, err := initiator.Search(q.Terms, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "minerva: query %v: %v\n", q.Terms, err)
			os.Exit(1)
		}
		ref := network.ReferenceTopK(q.Terms, *k, *conj)
		recall := ir.RelativeRecall(res.Results, ref)
		sumRecall += recall
		fmt.Printf("\nquery %d: %v  (initiator %s, %d candidates)\n", q.ID, q.Terms, initiator.Name(), res.Candidates)
		fmt.Printf("  plan (%s):\n", method)
		for _, step := range res.Plan.Steps {
			fmt.Printf("    %-12s quality=%.3f novelty=%.1f score=%.2f covered≈%.0f\n",
				step.Peer, step.Quality, step.Novelty, step.Score, step.Covered)
		}
		top := res.Results
		if len(top) > 5 {
			top = top[:5]
		}
		fmt.Printf("  top results: ")
		for _, r := range top {
			fmt.Printf("doc%d(%.2f) ", r.DocID, r.Score)
		}
		fmt.Printf("\n  recall@%d vs centralized index: %.3f\n", *k, recall)
	}
	fmt.Printf("\nmacro-averaged recall over %d queries: %.3f\n", len(queries), sumRecall/float64(len(queries)))
	if inmem, ok := net.(*transport.InMem); ok {
		calls, bytes := inmem.Stats()
		fmt.Printf("network traffic since boot: %d RPCs, %d payload bytes\n", calls, bytes)
	}
	if *httpAddr != "" {
		fmt.Printf("\nserving %s's HTTP API on %s  (try /search?q=%s&peers=%d and /status)\n",
			network.Peers[0].Name(), *httpAddr, strings.Join(queries[0].Terms, "+"), *maxPeers)
		if err := http.ListenAndServe(*httpAddr, network.Peers[0].HTTPHandler()); err != nil {
			fmt.Fprintln(os.Stderr, "minerva:", err)
			os.Exit(1)
		}
	}
}
