// Command iqnbench regenerates the paper's figures and the ablation
// experiments as text tables (and optionally CSV).
//
// Usage:
//
//	iqnbench -exp fig2left                        # Figure 2, left panel
//	iqnbench -exp fig2right -runs 50              # Figure 2, right panel
//	iqnbench -exp fig3left  -docs 60000           # Figure 3, (6 choose 3)
//	iqnbench -exp fig3right -docs 60000           # Figure 3, sliding window
//	iqnbench -exp aggregation|histogram|budget|hetero|prior
//	iqnbench -exp route                           # Fast-IQN lazy vs exhaustive routing cost
//	iqnbench -exp overload                        # tail latency bare vs overload-hardened
//	iqnbench -exp cache                           # directory read cache on a Zipfian repeated-term workload
//	iqnbench -exp qps                             # saturation queries/sec, bare vs optimized serving engine
//	iqnbench -exp topk                            # bytes on the wire, pull-everything vs threshold streaming
//	iqnbench -exp adaptive                        # query-log prior vs cold IQN, inflated-publisher defense
//	iqnbench -exp build -docs 1000000             # out-of-core index build: throughput, peak RSS, parity, resume
//	iqnbench -exp all                             # everything, default sizes
//
// The defaults are laptop-scale (20k documents); raise -docs for runs
// closer to the paper's 1.5M-document GOV corpus.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strings"
	"time"

	"iqn/internal/core"
	"iqn/internal/eval"
	"iqn/internal/synopsis"
)

// benchOutput is the machine-readable form of a bench run (-json): the
// run's parameters plus one entry per executed experiment. Committed
// artifacts (BENCH_route.json) use this shape, so downstream tooling
// and regression diffs parse one schema for every experiment.
type benchOutput struct {
	Seed        int64             `json:"seed"`
	Docs        int               `json:"docs"`
	Runs        int               `json:"runs"`
	Queries     int               `json:"queries"`
	K           int               `json:"k"`
	Experiments []benchExperiment `json:"experiments"`
}

type benchExperiment struct {
	Name      string `json:"name"`
	ElapsedMs int64  `json:"elapsedMs"`
	// Exactly one of the following is set, matching the experiment kind.
	Series   []benchSeries     `json:"series,omitempty"`
	Route    []routePoint      `json:"route,omitempty"`
	Overload []overloadPoint   `json:"overload,omitempty"`
	Cost     []costPoint       `json:"cost,omitempty"`
	Load     []loadPoint       `json:"load,omitempty"`
	Chaos    []eval.ChaosPoint `json:"chaos,omitempty"`
	Churn    *eval.ChurnResult `json:"churn,omitempty"`
	// ChurnSweep is set alongside Churn: the sustained live join/leave
	// sweep over (ring size × churn rate), with the churn-free twin's
	// recall per cell as the static baseline.
	ChurnSweep []eval.ChurnSweepCell `json:"churnSweep,omitempty"`
	Cache      []cachePoint          `json:"cache,omitempty"`
	QPS        *eval.QPSResult       `json:"qps,omitempty"`
	TopK       []topkPoint           `json:"topk,omitempty"`
	// Build is set only for the build experiment: out-of-core indexing
	// throughput, peak RSS vs budget, and the parity/resume gates.
	Build *eval.BuildResult `json:"build,omitempty"`
	// Adaptive is set only for the adaptive experiment: the query-log
	// prior's cold-vs-warm recall sweep, the inflated-publisher attack
	// recovery, and the replay parity gate.
	Adaptive *eval.AdaptiveResult `json:"adaptive,omitempty"`
	// RPCReductionPct is set only for the cache experiment: the
	// directory read-RPC reduction of cached over cold, in percent.
	RPCReductionPct float64 `json:"rpcReductionPct,omitempty"`
	// SpeedupX is set only for the qps experiment: the optimized/bare
	// saturation-QPS ratio over TCP — the serving-engine speedup.
	SpeedupX float64 `json:"speedupX,omitempty"`
	// BytesReductionPct and ParityOK are set only for the topk
	// experiment: the worst sweep cell's transport.bytes_in reduction
	// of streaming over pull, and whether every draw's merged results
	// were byte-identical under both protocols.
	BytesReductionPct float64 `json:"bytesReductionPct,omitempty"`
	ParityOK          bool    `json:"parityOK,omitempty"`
}

// benchSeries is a recall/error curve: one named series of (x, y)
// points, mirroring eval.Series with JSON tags.
type benchSeries struct {
	Name   string       `json:"name"`
	Points []benchPoint `json:"points"`
}

type benchPoint struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// routePoint is one row of the Fast-IQN routing-cost comparison.
type routePoint struct {
	Candidates   int     `json:"candidates"`
	LazyNs       int64   `json:"lazyNs"`
	ExhaustiveNs int64   `json:"exhaustiveNs"`
	Speedup      float64 `json:"speedup"`
	PlansEqual   bool    `json:"plansEqual"`
}

// overloadPoint mirrors eval.OverloadPoint with latencies in
// milliseconds — p50/p95/p99 tail latency, recall, and the degradation
// accounting per load level and mode.
type overloadPoint struct {
	Mode          string  `json:"mode"`
	Concurrency   int     `json:"concurrency"`
	P50Ms         float64 `json:"p50Ms"`
	P95Ms         float64 `json:"p95Ms"`
	P99Ms         float64 `json:"p99Ms"`
	Recall        float64 `json:"recall"`
	Reported      int     `json:"reported"`
	Rejected      int     `json:"rejected"`
	BudgetExpired int     `json:"budgetExpired"`
}

// costPoint mirrors eval.CostPoint: per-query messages and bytes per
// method/synopsis combination.
type costPoint struct {
	Series       string  `json:"series"`
	PublishBytes int64   `json:"publishBytes"`
	QueryBytes   int64   `json:"queryBytes"`
	QueryRPCs    int64   `json:"queryRPCs"`
	Recall       float64 `json:"recall"`
}

// cachePoint mirrors eval.CachePoint: directory read traffic and cache
// effectiveness for one mode of the repeated-term workload.
type cachePoint struct {
	Mode            string  `json:"mode"`
	DirReadRPCs     int64   `json:"dirReadRPCs"`
	RPCsPerQuery    float64 `json:"rpcsPerQuery"`
	CacheHits       int64   `json:"cacheHits"`
	CacheMisses     int64   `json:"cacheMisses"`
	SynopsisDecodes int64   `json:"synopsisDecodes"`
	SynopsisReuse   int64   `json:"synopsisReuse"`
	MeanMs          float64 `json:"meanMs"`
	P95Ms           float64 `json:"p95Ms"`
	Recall          float64 `json:"recall"`
}

// topkPoint mirrors eval.TopKPoint: one (k, peers, chunk) sweep cell of
// the pull-vs-streaming bandwidth comparison.
type topkPoint struct {
	K                 int     `json:"k"`
	MaxPeers          int     `json:"maxPeers"`
	ChunkSize         int     `json:"chunkSize"`
	PullBytesIn       int64   `json:"pullBytesIn"`
	StreamBytesIn     int64   `json:"streamBytesIn"`
	BytesReductionPct float64 `json:"bytesReductionPct"`
	PullBytesOut      int64   `json:"pullBytesOut"`
	StreamBytesOut    int64   `json:"streamBytesOut"`
	PullEntries       int64   `json:"pullEntries"`
	StreamEntries     int64   `json:"streamEntries"`
	Chunks            int64   `json:"chunks"`
	EarlyStops        int64   `json:"earlyStops"`
	PullRecall        float64 `json:"pullRecall"`
	StreamRecall      float64 `json:"streamRecall"`
	ParityOK          bool    `json:"parityOK"`
}

// loadPoint mirrors eval.LoadPoint: how evenly forwarded queries spread
// over peers.
type loadPoint struct {
	Series    string  `json:"series"`
	Total     int64   `json:"total"`
	Max       int64   `json:"max"`
	P90       int64   `json:"p90"`
	Imbalance float64 `json:"imbalance"`
	Recall    float64 `json:"recall"`
}

func toBenchSeries(series []eval.Series) []benchSeries {
	out := make([]benchSeries, 0, len(series))
	for _, s := range series {
		bs := benchSeries{Name: s.Name, Points: make([]benchPoint, 0, len(s.Points))}
		for _, p := range s.Points {
			bs.Points = append(bs.Points, benchPoint{X: p.X, Y: p.Y})
		}
		out = append(out, bs)
	}
	return out
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: fig2left|fig2right|fig3left|fig3right|aggregation|histogram|budget|hetero|prior|cost|churn|chaos|load|route|overload|cache|qps|topk|build|adaptive|all")
		docs    = flag.Int("docs", 20000, "corpus size for fig3-style experiments")
		vocab   = flag.Int("vocab", 0, "vocabulary size (0: docs/10)")
		runs    = flag.Int("runs", 50, "runs per point for fig2-style experiments")
		sizeRt  = flag.Int("fixedsize", 10000, "fixed collection size for fig2right (paper text: 10000, chart label: 5000)")
		numQ    = flag.Int("queries", 10, "query workload size")
		k       = flag.Int("k", 50, "result-list depth")
		seed    = flag.Int64("seed", 2006, "master seed")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		sll     = flag.Bool("sll", false, "add a super-LogLog series to fig2 experiments")
		svgDir  = flag.String("svgdir", "", "also write each experiment's chart as an SVG file into this directory")
		peers   = flag.String("peers", "", "comma-separated peer counts (default 1..10)")
		jsonOut = flag.String("json", "", "also write machine-readable results for the selected experiments to this JSON file")
		memMB   = flag.Int64("membudget", 128, "build experiment: spill-buffer budget in MiB")
	)
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	output := benchOutput{Seed: *seed, Docs: *docs, Runs: *runs, Queries: *numQ, K: *k, Experiments: []benchExperiment{}}
	record := func(name string, fill func(*benchExperiment)) {
		if *jsonOut == "" {
			return
		}
		e := benchExperiment{Name: name}
		fill(&e)
		output.Experiments = append(output.Experiments, e)
	}

	peerCounts := []int(nil)
	if *peers != "" {
		for _, s := range strings.Split(*peers, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil {
				fmt.Fprintf(os.Stderr, "iqnbench: bad -peers entry %q\n", s)
				os.Exit(2)
			}
			peerCounts = append(peerCounts, n)
		}
	}

	f2 := eval.Fig2Config{Runs: *runs, Seed: *seed, FixedSize: *sizeRt, IncludeSuperLogLog: *sll}
	f3 := func(strategy eval.Strategy) eval.Fig3Config {
		return eval.Fig3Config{
			CorpusDocs: *docs,
			VocabSize:  *vocab,
			Strategy:   strategy,
			Queries:    *numQ,
			K:          *k,
			Seed:       *seed,
			PeerCounts: peerCounts,
		}
	}
	left := eval.Strategy{F: 6, S: 3}
	right := eval.Strategy{Fragments: 100, R: 10, Offset: 2}

	expName := "exp"
	emit := func(title, xlabel, xfmt string, series []eval.Series, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "iqnbench: %s: %v\n", title, err)
			os.Exit(1)
		}
		record(expName, func(e *benchExperiment) { e.Series = toBenchSeries(series) })
		if *svgDir != "" {
			ylabel := "relative recall"
			if strings.HasPrefix(xlabel, "docs") || xlabel == "overlap" {
				ylabel = "relative error"
			}
			svg := eval.SVG(series, eval.SVGOptions{Title: title, XLabel: xlabel, YLabel: ylabel})
			path := *svgDir + "/" + expName + ".svg"
			if werr := os.WriteFile(path, []byte(svg), 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "iqnbench: write %s: %v\n", path, werr)
			} else {
				fmt.Fprintf(os.Stderr, "[wrote %s]\n", path)
			}
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", title, eval.CSV(xlabel, series))
			return
		}
		fmt.Println(eval.Table(title, xlabel, series, xfmt, "%.3f"))
	}

	run := func(name string) {
		start := time.Now()
		expName = name
		switch name {
		case "fig2left":
			emit("Figure 2 (left): relative error of resemblance estimation vs collection size (33% overlap)",
				"docs", "%.0f", eval.Fig2Left(f2), nil)
		case "fig2right":
			emit(fmt.Sprintf("Figure 2 (right): relative error vs mutual overlap (collection size %d)", *sizeRt),
				"overlap", "%.3f", eval.Fig2Right(f2), nil)
		case "fig3left":
			s, err := eval.Fig3(f3(left))
			emit("Figure 3 (left): recall vs queried peers, (6 choose 3) = 20 peers",
				"peers", "%.0f", s, err)
		case "fig3right":
			s, err := eval.Fig3(f3(right))
			emit("Figure 3 (right): recall vs queried peers, sliding window = 50 peers",
				"peers", "%.0f", s, err)
		case "aggregation":
			s, err := eval.AblationAggregation(f3(right))
			emit("Ablation: per-peer vs per-term aggregation (Section 6)",
				"peers", "%.0f", s, err)
		case "histogram":
			s, err := eval.AblationHistogram(f3(right))
			emit("Ablation: plain vs score-histogram IQN (Section 7.1)",
				"peers", "%.0f", s, err)
		case "budget":
			s, err := eval.AblationBudget(f3(right), 0)
			emit("Ablation: uniform vs adaptive synopsis budgets (Section 7.2)",
				"peers", "%.0f", s, err)
		case "hetero":
			emit("Ablation: heterogeneous MIPs lengths (Section 3.4)",
				"docs", "%.0f", eval.Fig2Hetero(f2), nil)
		case "prior":
			s, err := eval.AblationPrior(f3(right))
			emit("Ablation: IQN vs prior SIGIR'05 method",
				"peers", "%.0f", s, err)
		case "cost":
			points, err := eval.Cost(eval.CostConfig{
				CorpusDocs: *docs, VocabSize: *vocab, Strategy: right,
				Queries: *numQ, K: *k, Seed: *seed, MaxPeers: 5,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "iqnbench: cost: %v\n", err)
				os.Exit(1)
			}
			record(name, func(e *benchExperiment) {
				for _, p := range points {
					e.Cost = append(e.Cost, costPoint{
						Series: p.Series, PublishBytes: p.PublishBytes,
						QueryBytes: p.QueryBytes, QueryRPCs: p.QueryRPCs, Recall: p.Recall,
					})
				}
			})
			fmt.Println(eval.CostTable(points, 5))
		case "load":
			points, err := eval.Load(eval.LoadConfig{
				CorpusDocs: *docs, VocabSize: *vocab, Strategy: right,
				Queries: 50, K: *k, Seed: *seed, MaxPeers: 5,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "iqnbench: load: %v\n", err)
				os.Exit(1)
			}
			record(name, func(e *benchExperiment) {
				for _, p := range points {
					e.Load = append(e.Load, loadPoint{
						Series: p.Series, Total: p.Total, Max: p.Max,
						P90: p.P90, Imbalance: p.Imbalance, Recall: p.Recall,
					})
				}
			})
			fmt.Println(eval.LoadTable(points))
		case "route":
			table, points := routeTable(*runs, *seed)
			record(name, func(e *benchExperiment) { e.Route = points })
			fmt.Print(table)
		case "churn":
			res, err := eval.Churn(eval.ChurnConfig{
				CorpusDocs: *docs, VocabSize: *vocab, Strategy: right,
				Queries: *numQ, K: *k, Seed: *seed, MaxPeers: 5,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "iqnbench: churn: %v\n", err)
				os.Exit(1)
			}
			sweep, err := eval.ChurnSweep(eval.ChurnSweepConfig{
				Queries: *numQ, K: *k, MaxPeers: 5, Seed: *seed,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "iqnbench: churn sweep: %v\n", err)
				os.Exit(1)
			}
			record(name, func(e *benchExperiment) { e.Churn = res; e.ChurnSweep = sweep })
			fmt.Printf("# Churn: %d peers killed mid-workload\n", res.Killed)
			fmt.Printf("recall before      %0.3f\n", res.Before)
			fmt.Printf("recall degraded    %0.3f (stale posts still name dead peers)\n", res.Degraded)
			fmt.Printf("recall healed      %0.3f (after republish + prune of %d posts)\n", res.Healed, res.Pruned)
			fmt.Println("# Churn sweep: sustained graceful join/leave, recall vs the churn-free twin")
			fmt.Print(eval.ChurnSweepTable(sweep))
		case "overload":
			points, err := eval.Overload(eval.OverloadConfig{
				CorpusDocs: *docs, VocabSize: *vocab, Strategy: right,
				Queries: 40, K: *k, Seed: *seed, MaxPeers: 5,
				Concurrencies: []int{2, 8, 16}, AdmissionLimit: 2, AdmissionQueue: 1,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "iqnbench: overload: %v\n", err)
				os.Exit(1)
			}
			record(name, func(e *benchExperiment) {
				for _, p := range points {
					e.Overload = append(e.Overload, overloadPoint{
						Mode: p.Mode, Concurrency: p.Concurrency,
						P50Ms:  float64(p.P50) / float64(time.Millisecond),
						P95Ms:  float64(p.P95) / float64(time.Millisecond),
						P99Ms:  float64(p.P99) / float64(time.Millisecond),
						Recall: p.Recall, Reported: p.Reported,
						Rejected: p.Rejected, BudgetExpired: p.BudgetExpired,
					})
				}
			})
			fmt.Println("# Overload: tail latency and recall, bare vs hardened (budgets + hedging + breakers + admission control)")
			fmt.Print(eval.OverloadTable(points))
		case "cache":
			res, err := eval.Cache(eval.CacheConfig{
				CorpusDocs: *docs, VocabSize: *vocab, Strategy: right,
				QueryPool: *numQ, K: *k, Seed: *seed, MaxPeers: 5,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "iqnbench: cache: %v\n", err)
				os.Exit(1)
			}
			record(name, func(e *benchExperiment) {
				for _, p := range res.Points {
					e.Cache = append(e.Cache, cachePoint{
						Mode: p.Mode, DirReadRPCs: p.DirReadRPCs, RPCsPerQuery: p.RPCsPerQuery,
						CacheHits: p.CacheHits, CacheMisses: p.CacheMisses,
						SynopsisDecodes: p.SynopsisDecodes, SynopsisReuse: p.SynopsisReuse,
						MeanMs: p.MeanMs, P95Ms: p.P95Ms, Recall: p.Recall,
					})
				}
				e.RPCReductionPct = res.ReductionPct
			})
			fmt.Print(eval.CacheTable(res))
		case "qps":
			res, err := eval.QPS(eval.QPSConfig{
				CorpusDocs: *docs, VocabSize: *vocab,
				QueryPool: *numQ, Seed: *seed,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "iqnbench: qps: %v\n", err)
				os.Exit(1)
			}
			record(name, func(e *benchExperiment) {
				e.QPS = res
				e.SpeedupX = res.SpeedupX["tcp"]
			})
			fmt.Print(eval.QPSTable(res))
		case "topk":
			res, err := eval.TopK(eval.TopKConfig{
				CorpusDocs: *docs, VocabSize: *vocab, Strategy: right,
				QueryPool: *numQ, Seed: *seed, PeerCounts: peerCounts,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "iqnbench: topk: %v\n", err)
				os.Exit(1)
			}
			record(name, func(e *benchExperiment) {
				for _, p := range res.Points {
					e.TopK = append(e.TopK, topkPoint{
						K: p.K, MaxPeers: p.MaxPeers, ChunkSize: p.ChunkSize,
						PullBytesIn: p.PullBytesIn, StreamBytesIn: p.StreamBytesIn,
						BytesReductionPct: p.BytesReductionPct,
						PullBytesOut:      p.PullBytesOut, StreamBytesOut: p.StreamBytesOut,
						PullEntries: p.PullEntries, StreamEntries: p.StreamEntries,
						Chunks: p.Chunks, EarlyStops: p.EarlyStops,
						PullRecall: p.PullRecall, StreamRecall: p.StreamRecall,
						ParityOK: p.ParityOK,
					})
				}
				e.BytesReductionPct = res.MinReductionPct
				e.ParityOK = res.ParityOK
			})
			fmt.Print(eval.TopKTable(res))
		case "build":
			res, err := eval.Build(eval.BuildConfig{
				CorpusDocs: *docs, VocabSize: *vocab, Seed: *seed,
				MemBudgetMB: *memMB, SynopsisBits: 2048,
				Queries: *numQ, ParityCheck: true, ResumeCheck: true,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "iqnbench: build: %v\n", err)
				os.Exit(1)
			}
			record(name, func(e *benchExperiment) { e.Build = res })
			fmt.Print(eval.BuildTable(res))
			if !res.ParityOK || !res.ResumeOK {
				fmt.Fprintf(os.Stderr, "iqnbench: build: parity/resume gate failed (parity=%v resume=%v)\n",
					res.ParityOK, res.ResumeOK)
				os.Exit(1)
			}
		case "adaptive":
			// The adaptive gates are calibrated against the experiment's
			// canonical workload (eval.AdaptiveConfig defaults), so the
			// shared flags only apply when explicitly set — a bare
			// `-exp all` keeps the canonical regime instead of inheriting
			// fig3's 20k-doc default.
			acfg := eval.AdaptiveConfig{Seed: *seed}
			if explicit["docs"] {
				acfg.CorpusDocs = *docs
			}
			if explicit["vocab"] {
				acfg.VocabSize = *vocab
			}
			if explicit["queries"] {
				acfg.QueryPool = *numQ
			}
			if explicit["k"] {
				acfg.K = *k
			}
			res, err := eval.Adaptive(acfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "iqnbench: adaptive: %v\n", err)
				os.Exit(1)
			}
			record(name, func(e *benchExperiment) { e.Adaptive = res })
			fmt.Print(eval.AdaptiveTable(res))
			// Parity must hold at any scale; the recall gates are only
			// meaningful on the workload they were calibrated for.
			canonical := !explicit["docs"] && !explicit["vocab"] && !explicit["queries"] && !explicit["k"] && *seed == 2006
			if !res.ParityOK || (canonical && (res.PeersSaved < 1 || res.RecoveredFrac < 0.9)) {
				fmt.Fprintf(os.Stderr, "iqnbench: adaptive: gate failed (peersSaved=%d recoveredFrac=%.3f parity=%v)\n",
					res.PeersSaved, res.RecoveredFrac, res.ParityOK)
				os.Exit(1)
			}
		case "chaos":
			points, err := eval.Chaos(eval.ChaosConfig{
				CorpusDocs: *docs, VocabSize: *vocab, Strategy: right,
				Queries: *numQ, K: *k, Seed: *seed, MaxPeers: 5,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "iqnbench: chaos: %v\n", err)
				os.Exit(1)
			}
			record(name, func(e *benchExperiment) { e.Chaos = points })
			fmt.Println("# Chaos: recall vs peer-failure rate, with and without failure re-routing")
			fmt.Print(eval.ChaosTable(points))
		default:
			fmt.Fprintf(os.Stderr, "iqnbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		elapsed := time.Since(start)
		if n := len(output.Experiments); n > 0 && output.Experiments[n-1].Name == name {
			output.Experiments[n-1].ElapsedMs = elapsed.Milliseconds()
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, elapsed.Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, name := range []string{"fig2left", "fig2right", "fig3left", "fig3right",
			"aggregation", "histogram", "budget", "hetero", "prior", "cost", "churn", "chaos", "load", "route", "overload", "cache", "qps", "topk", "build", "adaptive"} {
			run(name)
		}
	} else {
		run(*exp)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(output, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "iqnbench: marshal results: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "iqnbench: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[wrote %s]\n", *jsonOut)
	}
}

// routeCandidates builds a synthetic routing candidate set: two-term
// MIPs synopses at the paper's 2048-bit budget, posting lists that
// overlap across peers, qualities drawn from a small set so tie-breaks
// are exercised.
func routeCandidates(n int, seed int64) (core.Query, []core.Candidate) {
	rng := rand.New(rand.NewSource(seed))
	cfg := synopsis.Config{Kind: synopsis.KindMIPs, Bits: 2048, Seed: uint64(seed)}
	terms := []string{"a", "b"}
	cands := make([]core.Candidate, 0, n)
	for p := 0; p < n; p++ {
		c := core.Candidate{
			Peer:              core.PeerID(fmt.Sprintf("p%06d", p)),
			Quality:           0.4 + float64(rng.Intn(7))*0.05,
			TermSynopses:      map[string]synopsis.Set{},
			TermCardinalities: map[string]float64{},
		}
		for ti, t := range terms {
			ids := make([]uint64, 200)
			for i := range ids {
				ids[i] = uint64(ti*1000000 + p*40 + i)
			}
			c.TermSynopses[t] = cfg.FromIDs(ids)
			c.TermCardinalities[t] = 200
		}
		cands = append(cands, c)
	}
	return core.Query{Terms: terms}, cands
}

// routeTable times the Fast-IQN lazy engine (core.Route) against the
// exhaustive reference (core.SelectExhaustive) on growing candidate
// sets, verifying on every run that the two plans are identical. It
// returns both the human-readable table and the machine-readable rows.
func routeTable(runs int, seed int64) (string, []routePoint) {
	if runs < 1 {
		runs = 1
	}
	var b strings.Builder
	var points []routePoint
	fmt.Fprintf(&b, "# Fast-IQN: lazy-greedy vs exhaustive Select-Best-Peer (MaxPeers=10, %d runs)\n", runs)
	fmt.Fprintf(&b, "%10s %14s %14s %9s %6s\n", "candidates", "lazy", "exhaustive", "speedup", "plans")
	opts := core.Options{MaxPeers: 10}
	for _, n := range []int{100, 1000, 10000} {
		q, cands := routeCandidates(n, seed)
		equal := true
		time_ := func(route func(core.Query, *core.Candidate, []core.Candidate, core.Options) (core.Plan, error)) (time.Duration, core.Plan) {
			var last core.Plan
			start := time.Now()
			for r := 0; r < runs; r++ {
				plan, err := route(q, nil, cands, opts)
				if err != nil {
					fmt.Fprintf(os.Stderr, "iqnbench: route: %v\n", err)
					os.Exit(1)
				}
				last = plan
			}
			return time.Since(start) / time.Duration(runs), last
		}
		lazyD, lazyPlan := time_(core.Route)
		exD, exPlan := time_(core.SelectExhaustive)
		if !reflect.DeepEqual(lazyPlan, exPlan) {
			equal = false
		}
		verdict := "equal"
		if !equal {
			verdict = "DIFFER"
		}
		fmt.Fprintf(&b, "%10d %14s %14s %8.1fx %6s\n", n, lazyD, exD, float64(exD)/float64(lazyD), verdict)
		points = append(points, routePoint{
			Candidates:   n,
			LazyNs:       lazyD.Nanoseconds(),
			ExhaustiveNs: exD.Nanoseconds(),
			Speedup:      float64(exD) / float64(lazyD),
			PlansEqual:   equal,
		})
	}
	return b.String(), points
}
