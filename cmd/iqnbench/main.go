// Command iqnbench regenerates the paper's figures and the ablation
// experiments as text tables (and optionally CSV).
//
// Usage:
//
//	iqnbench -exp fig2left                        # Figure 2, left panel
//	iqnbench -exp fig2right -runs 50              # Figure 2, right panel
//	iqnbench -exp fig3left  -docs 60000           # Figure 3, (6 choose 3)
//	iqnbench -exp fig3right -docs 60000           # Figure 3, sliding window
//	iqnbench -exp aggregation|histogram|budget|hetero|prior
//	iqnbench -exp all                             # everything, default sizes
//
// The defaults are laptop-scale (20k documents); raise -docs for runs
// closer to the paper's 1.5M-document GOV corpus.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"iqn/internal/eval"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: fig2left|fig2right|fig3left|fig3right|aggregation|histogram|budget|hetero|prior|cost|churn|load|all")
		docs   = flag.Int("docs", 20000, "corpus size for fig3-style experiments")
		vocab  = flag.Int("vocab", 0, "vocabulary size (0: docs/10)")
		runs   = flag.Int("runs", 50, "runs per point for fig2-style experiments")
		sizeRt = flag.Int("fixedsize", 10000, "fixed collection size for fig2right (paper text: 10000, chart label: 5000)")
		numQ   = flag.Int("queries", 10, "query workload size")
		k      = flag.Int("k", 50, "result-list depth")
		seed   = flag.Int64("seed", 2006, "master seed")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		sll    = flag.Bool("sll", false, "add a super-LogLog series to fig2 experiments")
		svgDir = flag.String("svgdir", "", "also write each experiment's chart as an SVG file into this directory")
		peers  = flag.String("peers", "", "comma-separated peer counts (default 1..10)")
	)
	flag.Parse()

	peerCounts := []int(nil)
	if *peers != "" {
		for _, s := range strings.Split(*peers, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil {
				fmt.Fprintf(os.Stderr, "iqnbench: bad -peers entry %q\n", s)
				os.Exit(2)
			}
			peerCounts = append(peerCounts, n)
		}
	}

	f2 := eval.Fig2Config{Runs: *runs, Seed: *seed, FixedSize: *sizeRt, IncludeSuperLogLog: *sll}
	f3 := func(strategy eval.Strategy) eval.Fig3Config {
		return eval.Fig3Config{
			CorpusDocs: *docs,
			VocabSize:  *vocab,
			Strategy:   strategy,
			Queries:    *numQ,
			K:          *k,
			Seed:       *seed,
			PeerCounts: peerCounts,
		}
	}
	left := eval.Strategy{F: 6, S: 3}
	right := eval.Strategy{Fragments: 100, R: 10, Offset: 2}

	expName := "exp"
	emit := func(title, xlabel, xfmt string, series []eval.Series, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "iqnbench: %s: %v\n", title, err)
			os.Exit(1)
		}
		if *svgDir != "" {
			ylabel := "relative recall"
			if strings.HasPrefix(xlabel, "docs") || xlabel == "overlap" {
				ylabel = "relative error"
			}
			svg := eval.SVG(series, eval.SVGOptions{Title: title, XLabel: xlabel, YLabel: ylabel})
			path := *svgDir + "/" + expName + ".svg"
			if werr := os.WriteFile(path, []byte(svg), 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "iqnbench: write %s: %v\n", path, werr)
			} else {
				fmt.Fprintf(os.Stderr, "[wrote %s]\n", path)
			}
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", title, eval.CSV(xlabel, series))
			return
		}
		fmt.Println(eval.Table(title, xlabel, series, xfmt, "%.3f"))
	}

	run := func(name string) {
		start := time.Now()
		expName = name
		switch name {
		case "fig2left":
			emit("Figure 2 (left): relative error of resemblance estimation vs collection size (33% overlap)",
				"docs", "%.0f", eval.Fig2Left(f2), nil)
		case "fig2right":
			emit(fmt.Sprintf("Figure 2 (right): relative error vs mutual overlap (collection size %d)", *sizeRt),
				"overlap", "%.3f", eval.Fig2Right(f2), nil)
		case "fig3left":
			s, err := eval.Fig3(f3(left))
			emit("Figure 3 (left): recall vs queried peers, (6 choose 3) = 20 peers",
				"peers", "%.0f", s, err)
		case "fig3right":
			s, err := eval.Fig3(f3(right))
			emit("Figure 3 (right): recall vs queried peers, sliding window = 50 peers",
				"peers", "%.0f", s, err)
		case "aggregation":
			s, err := eval.AblationAggregation(f3(right))
			emit("Ablation: per-peer vs per-term aggregation (Section 6)",
				"peers", "%.0f", s, err)
		case "histogram":
			s, err := eval.AblationHistogram(f3(right))
			emit("Ablation: plain vs score-histogram IQN (Section 7.1)",
				"peers", "%.0f", s, err)
		case "budget":
			s, err := eval.AblationBudget(f3(right), 0)
			emit("Ablation: uniform vs adaptive synopsis budgets (Section 7.2)",
				"peers", "%.0f", s, err)
		case "hetero":
			emit("Ablation: heterogeneous MIPs lengths (Section 3.4)",
				"docs", "%.0f", eval.Fig2Hetero(f2), nil)
		case "prior":
			s, err := eval.AblationPrior(f3(right))
			emit("Ablation: IQN vs prior SIGIR'05 method",
				"peers", "%.0f", s, err)
		case "cost":
			points, err := eval.Cost(eval.CostConfig{
				CorpusDocs: *docs, VocabSize: *vocab, Strategy: right,
				Queries: *numQ, K: *k, Seed: *seed, MaxPeers: 5,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "iqnbench: cost: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(eval.CostTable(points, 5))
		case "load":
			points, err := eval.Load(eval.LoadConfig{
				CorpusDocs: *docs, VocabSize: *vocab, Strategy: right,
				Queries: 50, K: *k, Seed: *seed, MaxPeers: 5,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "iqnbench: load: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(eval.LoadTable(points))
		case "churn":
			res, err := eval.Churn(eval.ChurnConfig{
				CorpusDocs: *docs, VocabSize: *vocab, Strategy: right,
				Queries: *numQ, K: *k, Seed: *seed, MaxPeers: 5,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "iqnbench: churn: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("# Churn: %d peers killed mid-workload\n", res.Killed)
			fmt.Printf("recall before      %0.3f\n", res.Before)
			fmt.Printf("recall degraded    %0.3f (stale posts still name dead peers)\n", res.Degraded)
			fmt.Printf("recall healed      %0.3f (after republish + prune of %d posts)\n", res.Healed, res.Pruned)
		default:
			fmt.Fprintf(os.Stderr, "iqnbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, name := range []string{"fig2left", "fig2right", "fig3left", "fig3right",
			"aggregation", "histogram", "budget", "hetero", "prior", "cost", "churn", "load"} {
			run(name)
		}
		return
	}
	run(*exp)
}
