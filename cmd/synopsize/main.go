// Command synopsize builds, inspects, and compares set synopses from ID
// lists — a workbench for the estimators of Section 3.
//
// Usage:
//
//	seq 1 10000 | synopsize -kind mips -bits 2048          # build + stats
//	synopsize -a ids_a.txt -b ids_b.txt -kind bloom        # compare two sets
//	synopsize -a a.txt -b b.txt -kind mips -bits 1024 -out union.syn
//
// ID files contain one unsigned 64-bit integer per line; "-" means stdin.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"iqn/internal/synopsis"
)

func readIDs(path string) ([]uint64, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var ids []uint64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		id, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad id %q: %w", line, err)
		}
		ids = append(ids, id)
	}
	return ids, sc.Err()
}

func trueStats(a, b []uint64) (distinctA, distinctB, inter, union int) {
	seen := make(map[uint64]struct{}, len(a))
	for _, id := range a {
		seen[id] = struct{}{}
	}
	distinctA = len(seen)
	union = distinctA
	bSeen := make(map[uint64]struct{}, len(b))
	for _, id := range b {
		if _, dup := bSeen[id]; dup {
			continue
		}
		bSeen[id] = struct{}{}
		if _, ok := seen[id]; ok {
			inter++
		} else {
			union++
		}
	}
	distinctB = len(bSeen)
	return distinctA, distinctB, inter, union
}

func main() {
	var (
		kindFlag = flag.String("kind", "mips", "synopsis kind: mips|bloom|hashsketch")
		bits     = flag.Int("bits", 2048, "space budget in bits")
		seed     = flag.Uint64("seed", 42, "MIPs permutation seed")
		aPath    = flag.String("a", "-", "first ID file (- for stdin)")
		bPath    = flag.String("b", "", "second ID file: enables comparison")
		outPath  = flag.String("out", "", "write the (union) synopsis binary here")
		compress = flag.Bool("compress", false, "for Bloom filters: also report the Golomb-Rice compressed wire size (Mitzenmacher)")
	)
	flag.Parse()
	kind, err := synopsis.ParseKind(*kindFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synopsize:", err)
		os.Exit(2)
	}
	cfg := synopsis.Config{Kind: kind, Bits: *bits, Seed: *seed}

	idsA, err := readIDs(*aPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synopsize:", err)
		os.Exit(1)
	}
	sa := cfg.FromIDs(idsA)
	fmt.Printf("set A: %d ids, synopsis %s/%d bits, cardinality (exact) %.0f\n",
		len(idsA), kind, sa.SizeBits(), sa.Cardinality())
	if *compress {
		bf, ok := sa.(*synopsis.Bloom)
		if !ok {
			fmt.Fprintln(os.Stderr, "synopsize: -compress only applies to -kind bloom")
			os.Exit(2)
		}
		plain, err := bf.MarshalBinary()
		if err != nil {
			fmt.Fprintln(os.Stderr, "synopsize:", err)
			os.Exit(1)
		}
		comp, err := synopsis.CompressBloom(bf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "synopsize:", err)
			os.Exit(1)
		}
		fmt.Printf("wire size: plain %d B, compressed %d B (%.2fx)\n",
			len(plain), len(comp), float64(len(plain))/float64(len(comp)))
	}

	final := sa
	if *bPath != "" {
		idsB, err := readIDs(*bPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "synopsize:", err)
			os.Exit(1)
		}
		sb := cfg.FromIDs(idsB)
		fmt.Printf("set B: %d ids, synopsis %s/%d bits\n", len(idsB), kind, sb.SizeBits())
		est, err := sa.Resemblance(sb)
		if err != nil {
			fmt.Fprintln(os.Stderr, "synopsize:", err)
			os.Exit(1)
		}
		distinctA, distinctB, inter, union := trueStats(idsA, idsB)
		_ = distinctA
		trueR := 0.0
		if union > 0 {
			trueR = float64(inter) / float64(union)
		}
		nov, err := synopsis.EstimateNovelty(sa, sb, float64(len(idsA)), float64(len(idsB)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "synopsize:", err)
			os.Exit(1)
		}
		fmt.Printf("resemblance: estimated %.4f, true %.4f\n", est, trueR)
		fmt.Printf("overlap:     estimated %.0f, true %d\n",
			synopsis.OverlapFromResemblance(est, float64(len(idsA)), float64(len(idsB))), inter)
		fmt.Printf("novelty(B|A): estimated %.0f, true %d\n", nov, distinctB-inter)
		u, err := sa.Union(sb)
		if err != nil {
			fmt.Fprintln(os.Stderr, "synopsize:", err)
			os.Exit(1)
		}
		fmt.Printf("union:       estimated %.0f, true %d\n", u.Cardinality(), union)
		final = u
	}
	if *outPath != "" {
		data, err := final.MarshalBinary()
		if err != nil {
			fmt.Fprintln(os.Stderr, "synopsize:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "synopsize:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d bytes to %s\n", len(data), *outPath)
	}
}
