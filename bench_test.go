package iqn

// The benchmark harness: one testing.B target per figure of the paper
// plus ablation and micro benchmarks for the design choices DESIGN.md
// calls out. Figure benches run the eval drivers at reduced scale and
// attach the headline quantities as custom metrics (relative errors,
// recall values), so `go test -bench .` both times the pipeline and
// regenerates the result shapes; `cmd/iqnbench` runs the full-scale
// versions.

import (
	"fmt"
	"runtime"
	"testing"

	"iqn/internal/chord"
	"iqn/internal/core"
	"iqn/internal/dataset"
	"iqn/internal/directory"
	"iqn/internal/eval"
	"iqn/internal/minerva"
	"iqn/internal/synopsis"
	"iqn/internal/topk"
	"iqn/internal/transport"
)

// --- Figure 2: synopsis accuracy ------------------------------------

func benchFig2Config() eval.Fig2Config {
	return eval.Fig2Config{Runs: 5, Seed: 1, Sizes: []int{1000, 10000, 40000}, FixedSize: 10000}
}

// BenchmarkFig2Left regenerates the left panel of Figure 2 (relative
// error of resemblance estimation vs collection size, 33% overlap) and
// reports each series' error at the largest collection size.
func BenchmarkFig2Left(b *testing.B) {
	b.ReportAllocs()
	var series []eval.Series
	for i := 0; i < b.N; i++ {
		series = eval.Fig2Left(benchFig2Config())
	}
	for _, s := range series {
		if y, ok := s.YAt(40000); ok {
			b.ReportMetric(y, "relerr@40k:"+metricName(s.Name))
		}
	}
}

// BenchmarkFig2Right regenerates the right panel (relative error vs
// mutual overlap at fixed collection size) and reports each series'
// error at 1/3 overlap.
func BenchmarkFig2Right(b *testing.B) {
	b.ReportAllocs()
	cfg := benchFig2Config()
	cfg.Overlaps = []float64{1.0 / 2, 1.0 / 3, 1.0 / 9}
	var series []eval.Series
	for i := 0; i < b.N; i++ {
		series = eval.Fig2Right(cfg)
	}
	for _, s := range series {
		if y, ok := s.YAt(1.0 / 3); ok {
			b.ReportMetric(y, "relerr@33%:"+metricName(s.Name))
		}
	}
}

// --- Figure 3: recall vs queried peers -------------------------------

func benchFig3Config(strategy eval.Strategy) eval.Fig3Config {
	return eval.Fig3Config{
		CorpusDocs: 4000,
		VocabSize:  3000,
		Strategy:   strategy,
		Queries:    5,
		K:          40,
		PeerCounts: []int{2, 5},
		Seed:       7,
	}
}

// reportRecall attaches recall at the given peer count for the named
// series.
func reportRecall(b *testing.B, series []eval.Series, peers int, names ...string) {
	b.Helper()
	for _, name := range names {
		s := eval.FindSeries(series, name)
		if s == nil {
			b.Fatalf("series %q missing", name)
		}
		if y, ok := s.YAt(float64(peers)); ok {
			b.ReportMetric(y, fmt.Sprintf("recall@%d:%s", peers, metricName(name)))
		}
	}
}

// BenchmarkFig3Left regenerates the left panel of Figure 3: the
// (6 choose 3) = 20-peer assignment.
func BenchmarkFig3Left(b *testing.B) {
	b.ReportAllocs()
	cfg := benchFig3Config(eval.Strategy{F: 6, S: 3})
	var series []eval.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = eval.Fig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRecall(b, series, 2, "CORI", "MIPs 64", "BF 2048")
}

// BenchmarkFig3Right regenerates the right panel: the sliding-window
// assignment with systematic overlap.
func BenchmarkFig3Right(b *testing.B) {
	b.ReportAllocs()
	cfg := benchFig3Config(eval.Strategy{Fragments: 40, R: 10, Offset: 2})
	var series []eval.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = eval.Fig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRecall(b, series, 5, "CORI", "MIPs 32", "MIPs 64")
}

// --- Ablations --------------------------------------------------------

// BenchmarkAblationAggregation compares per-peer vs per-term aggregation
// (Section 6).
func BenchmarkAblationAggregation(b *testing.B) {
	b.ReportAllocs()
	cfg := benchFig3Config(eval.Strategy{Fragments: 40, R: 10, Offset: 2})
	var series []eval.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = eval.AblationAggregation(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRecall(b, series, 5, "per-peer disj", "per-term disj")
}

// BenchmarkAblationHistogram compares plain vs score-histogram IQN
// (Section 7.1) at equal budgets.
func BenchmarkAblationHistogram(b *testing.B) {
	b.ReportAllocs()
	cfg := benchFig3Config(eval.Strategy{Fragments: 40, R: 10, Offset: 2})
	var series []eval.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = eval.AblationHistogram(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRecall(b, series, 5, "IQN plain 2048", "IQN hist 4x512")
}

// BenchmarkAblationBudget compares uniform vs adaptive synopsis lengths
// (Section 7.2).
func BenchmarkAblationBudget(b *testing.B) {
	b.ReportAllocs()
	cfg := benchFig3Config(eval.Strategy{Fragments: 40, R: 10, Offset: 2})
	var series []eval.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = eval.AblationBudget(cfg, 500)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRecall(b, series, 5, "uniform 1024", "adaptive list-length")
}

// BenchmarkAblationHetero measures MIPs accuracy under heterogeneous
// vector lengths (Section 3.4).
func BenchmarkAblationHetero(b *testing.B) {
	b.ReportAllocs()
	cfg := benchFig2Config()
	cfg.Sizes = []int{10000}
	var series []eval.Series
	for i := 0; i < b.N; i++ {
		series = eval.Fig2Hetero(cfg)
	}
	for _, s := range series {
		if y, ok := s.YAt(10000); ok {
			b.ReportMetric(y, "relerr:"+metricName(s.Name))
		}
	}
}

// BenchmarkAblationPrior compares IQN against the SIGIR'05 prior method.
func BenchmarkAblationPrior(b *testing.B) {
	b.ReportAllocs()
	cfg := benchFig3Config(eval.Strategy{Fragments: 40, R: 10, Offset: 2})
	var series []eval.Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = eval.AblationPrior(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRecall(b, series, 5, "MIPs 64", "Prior(SIGIR05)")
}

// --- Micro benchmarks: the substrate costs ---------------------------

// BenchmarkSynopsisAdd measures insertion cost per synopsis family at
// the paper's 2048-bit budget.
func BenchmarkSynopsisAdd(b *testing.B) {
	b.ReportAllocs()
	for _, kind := range []synopsis.Kind{synopsis.KindMIPs, synopsis.KindBloom, synopsis.KindHashSketch, synopsis.KindSuperLogLog} {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			s := synopsis.Config{Kind: kind, Bits: 2048, Seed: 1}.New()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Add(uint64(i))
			}
		})
	}
}

// BenchmarkSynopsisResemblance measures the pair-wise estimation cost —
// the inner loop of every IQN iteration.
func BenchmarkSynopsisResemblance(b *testing.B) {
	b.ReportAllocs()
	for _, kind := range []synopsis.Kind{synopsis.KindMIPs, synopsis.KindBloom, synopsis.KindHashSketch, synopsis.KindSuperLogLog} {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			cfg := synopsis.Config{Kind: kind, Bits: 2048, Seed: 1}
			ids := make([]uint64, 5000)
			for i := range ids {
				ids[i] = uint64(i)
			}
			sa := cfg.FromIDs(ids[:3000])
			sb := cfg.FromIDs(ids[2000:])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sa.Resemblance(sb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIQNRoute measures the routing decision itself (no network):
// 50 candidates, 3-term query, 10 peers selected.
func BenchmarkIQNRoute(b *testing.B) {
	b.ReportAllocs()
	cfg := synopsis.Config{Kind: synopsis.KindMIPs, Bits: 2048, Seed: 3}
	terms := []string{"a", "b", "c"}
	var cands []core.Candidate
	for p := 0; p < 50; p++ {
		c := core.Candidate{
			Peer:              core.PeerID(fmt.Sprintf("p%02d", p)),
			Quality:           0.4 + float64(p%7)*0.05,
			TermSynopses:      map[string]synopsis.Set{},
			TermCardinalities: map[string]float64{},
		}
		for ti, t := range terms {
			ids := make([]uint64, 500)
			for i := range ids {
				ids[i] = uint64(p*100 + ti*37 + i) // overlapping ranges
			}
			c.TermSynopses[t] = cfg.FromIDs(ids)
			c.TermCardinalities[t] = 500
		}
		cands = append(cands, c)
	}
	q := core.Query{Terms: terms}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Route(q, nil, cands, core.Options{MaxPeers: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChordLookup measures key resolution on a 32-node ring.
func BenchmarkChordLookup(b *testing.B) {
	b.ReportAllocs()
	net := transport.NewInMem()
	var nodes []*chord.Node
	for i := 0; i < 32; i++ {
		n, err := chord.New(fmt.Sprintf("n%02d", i), net, chord.Config{})
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	nodes[0].Create()
	for i := 1; i < len(nodes); i++ {
		if err := nodes[i].Join("n00"); err != nil {
			b.Fatal(err)
		}
		for r := 0; r < 3; r++ {
			for j := 0; j <= i; j++ {
				nodes[j].Stabilize()
			}
		}
	}
	for r := 0; r < 2*len(nodes); r++ {
		for _, n := range nodes {
			n.Stabilize()
		}
	}
	for _, n := range nodes {
		n.FixAllFingers()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nodes[i%len(nodes)].Lookup(fmt.Sprintf("key-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectoryPublish measures batched synopsis publication — the
// background network cost Section 7.2 is about.
func BenchmarkDirectoryPublish(b *testing.B) {
	b.ReportAllocs()
	net := transport.NewInMem()
	var nodes []*chord.Node
	for i := 0; i < 8; i++ {
		n, err := chord.New(fmt.Sprintf("d%02d", i), net, chord.Config{})
		if err != nil {
			b.Fatal(err)
		}
		directory.NewService(n)
		nodes = append(nodes, n)
	}
	nodes[0].Create()
	for i := 1; i < len(nodes); i++ {
		if err := nodes[i].Join("d00"); err != nil {
			b.Fatal(err)
		}
		for r := 0; r < 3; r++ {
			for j := 0; j <= i; j++ {
				nodes[j].Stabilize()
			}
		}
	}
	for r := 0; r < 16; r++ {
		for _, n := range nodes {
			n.Stabilize()
		}
	}
	for _, n := range nodes {
		n.FixAllFingers()
	}
	client := directory.NewClient(nodes[0], 1)
	cfg := synopsis.Config{Kind: synopsis.KindMIPs, Bits: 2048, Seed: 1}
	ids := make([]uint64, 200)
	for i := range ids {
		ids[i] = uint64(i)
	}
	syn, err := cfg.FromIDs(ids).MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	posts := make([]directory.Post, 200)
	for i := range posts {
		posts[i] = directory.Post{
			Peer: "bench", PeerAddr: "bench", Term: fmt.Sprintf("term-%03d", i),
			ListLength: 200, Synopsis: syn,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Publish(posts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopKSelect measures threshold-algorithm PeerList trimming
// against 5 lists of 1000 peers.
func BenchmarkTopKSelect(b *testing.B) {
	b.ReportAllocs()
	lists := make([][]topk.Item, 5)
	for li := range lists {
		l := make([]topk.Item, 1000)
		for i := range l {
			l[i] = topk.Item{Key: fmt.Sprintf("peer-%04d", (i*7+li*13)%1000), Score: float64(1000 - i)}
		}
		lists[li] = l
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topk.Select(lists, 10)
	}
}

// BenchmarkSearchEndToEnd measures a full distributed search (PeerList
// fetch, IQN routing, forwarding, merging) on a 10-peer network.
func BenchmarkSearchEndToEnd(b *testing.B) {
	b.ReportAllocs()
	corpus := dataset.Generate(dataset.CorpusConfig{NumDocs: 2000, VocabSize: 1500, Seed: 9})
	cols := dataset.AssignSlidingWindow(corpus, 20, 4, 2)
	net, err := minerva.BuildNetwork(transport.NewInMem(), corpus, cols, minerva.Config{SynopsisSeed: 9})
	if err != nil {
		b.Fatal(err)
	}
	defer net.Close()
	q := dataset.GenerateQueries(corpus, dataset.QueryConfig{Count: 1, Seed: 9})[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Peers[i%len(net.Peers)].Search(q.Terms, minerva.SearchOptions{K: 20, MaxPeers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompressBloom measures the Mitzenmacher wire compression of a
// sparse directory-grade Bloom filter, reporting the realized ratio.
func BenchmarkCompressBloom(b *testing.B) {
	b.ReportAllocs()
	filter := synopsis.NewBloom(1<<15, 2)
	for i := 0; i < 300; i++ {
		filter.Add(uint64(i) * 977)
	}
	plain, err := filter.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	var compressed []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compressed, err = synopsis.CompressBloom(filter)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(plain))/float64(len(compressed)), "ratio")
}

// BenchmarkApproxTopK measures the KLEE-style aggregation against the
// exact threshold algorithm's input (5 lists of 1000 peers, 40-entry
// prefixes).
func BenchmarkApproxTopK(b *testing.B) {
	b.ReportAllocs()
	lists := make([][]topk.Item, 5)
	for li := range lists {
		l := make([]topk.Item, 1000)
		for i := range l {
			l[i] = topk.Item{Key: fmt.Sprintf("peer-%04d", (i*7+li*13)%1000), Score: float64(1000 - i)}
		}
		lists[li] = l
	}
	sums := make([]topk.ListSummary, len(lists))
	for i, l := range lists {
		sums[i] = topk.Summarize(l, 40, 8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topk.ApproxSelect(sums, 10, 1000)
	}
}

// BenchmarkCorrelationMatrix measures the future-work term-correlation
// estimation over a 4-term candidate.
func BenchmarkCorrelationMatrix(b *testing.B) {
	b.ReportAllocs()
	cfg := synopsis.Config{Kind: synopsis.KindMIPs, Bits: 2048, Seed: 5}
	c := core.Candidate{
		Peer:              "p",
		TermSynopses:      map[string]synopsis.Set{},
		TermCardinalities: map[string]float64{},
	}
	terms := []string{"a", "b", "c", "d"}
	for ti, t := range terms {
		ids := make([]uint64, 800)
		for i := range ids {
			ids[i] = uint64(ti*300 + i)
		}
		c.TermSynopses[t] = cfg.FromIDs(ids)
		c.TermCardinalities[t] = 800
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CorrelationMatrix(c, terms); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fast-IQN: lazy vs exhaustive selection ---------------------------

// routeBenchInput builds n candidates with overlapping two-term MIPs
// synopses at the paper's 2048-bit budget — the workload of the Fast-IQN
// acceptance comparison.
func routeBenchInput(n int) (core.Query, []core.Candidate) {
	cfg := synopsis.Config{Kind: synopsis.KindMIPs, Bits: 2048, Seed: 3}
	terms := []string{"a", "b"}
	cands := make([]core.Candidate, 0, n)
	for p := 0; p < n; p++ {
		c := core.Candidate{
			Peer:              core.PeerID(fmt.Sprintf("p%05d", p)),
			Quality:           0.4 + float64(p%7)*0.05,
			TermSynopses:      map[string]synopsis.Set{},
			TermCardinalities: map[string]float64{},
		}
		for ti, t := range terms {
			ids := make([]uint64, 200)
			for i := range ids {
				// Ranges overlap across peers; the two terms' ID spaces are
				// disjoint, as distinct keywords' posting lists mostly are.
				ids[i] = uint64(ti*1000000 + p*40 + i)
			}
			c.TermSynopses[t] = cfg.FromIDs(ids)
			c.TermCardinalities[t] = 200
		}
		cands = append(cands, c)
	}
	return core.Query{Terms: terms}, cands
}

// benchRoute times one routing engine over the shared candidate scales.
func benchRoute(b *testing.B, route func(core.Query, *core.Candidate, []core.Candidate, core.Options) (core.Plan, error), opts core.Options) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("cands=%d", n), func(b *testing.B) {
			q, cands := routeBenchInput(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := route(q, nil, cands, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRouteLazy measures the Fast-IQN lazy-greedy engine (Route's
// default path), single-threaded.
func BenchmarkRouteLazy(b *testing.B) {
	benchRoute(b, core.Route, core.Options{MaxPeers: 10})
}

// BenchmarkRouteLazyParallel measures the lazy engine with the scoring
// fan-out enabled at full GOMAXPROCS width.
func BenchmarkRouteLazyParallel(b *testing.B) {
	benchRoute(b, core.Route, core.Options{MaxPeers: 10, Parallelism: runtime.GOMAXPROCS(0)})
}

// BenchmarkRouteExhaustive measures the original full-rescan reference
// implementation on the identical workload.
func BenchmarkRouteExhaustive(b *testing.B) {
	benchRoute(b, core.SelectExhaustive, core.Options{MaxPeers: 10})
}

// --- Zero-alloc synopsis kernels --------------------------------------

// BenchmarkMIPsKernels measures the MIPs hot kernels of the router inner
// loop; all of them must report 0 allocs/op in steady state.
func BenchmarkMIPsKernels(b *testing.B) {
	cfg := synopsis.Config{Kind: synopsis.KindMIPs, Bits: 2048, Seed: 1}
	ids := make([]uint64, 5000)
	for i := range ids {
		ids[i] = uint64(i)
	}
	sa := cfg.FromIDs(ids[:3000]).(*synopsis.MIPs)
	sb := cfg.FromIDs(ids[2000:]).(*synopsis.MIPs)
	b.Run("resemblance-detail", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := sa.ResemblanceDetail(sb); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("union-in-place", func(b *testing.B) {
		b.ReportAllocs()
		acc := sa.Clone().(*synopsis.MIPs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := acc.UnionInPlace(sb); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("intersect-in-place", func(b *testing.B) {
		b.ReportAllocs()
		acc := sa.Clone().(*synopsis.MIPs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := acc.IntersectInPlace(sb); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-reuse", func(b *testing.B) {
		b.ReportAllocs()
		wire, err := sa.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		var dec synopsis.MIPs
		if err := dec.UnmarshalBinary(wire); err != nil {
			b.Fatal(err) // prime the buffer and the shared param cache
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := dec.UnmarshalBinary(wire); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBloomKernels measures the word-level Bloom kernels; all of
// them must report 0 allocs/op.
func BenchmarkBloomKernels(b *testing.B) {
	cfg := synopsis.Config{Kind: synopsis.KindBloom, Bits: 2048, BloomHashes: 4}
	ids := make([]uint64, 5000)
	for i := range ids {
		ids[i] = uint64(i)
	}
	sa := cfg.FromIDs(ids[:3000]).(*synopsis.Bloom)
	sb := cfg.FromIDs(ids[2000:]).(*synopsis.Bloom)
	b.Run("union-in-place", func(b *testing.B) {
		b.ReportAllocs()
		acc := sa.Clone().(*synopsis.Bloom)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := acc.UnionInPlace(sb); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("intersect-in-place", func(b *testing.B) {
		b.ReportAllocs()
		acc := sa.Clone().(*synopsis.Bloom)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := acc.IntersectInPlace(sb); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("difference-cardinality", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sa.DifferenceCardinality(sb); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("resemblance", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sa.Resemblance(sb); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// metricName compresses a series name into a metric-safe token.
func metricName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ' || r == '(' || r == ')':
			// skip
		default:
			out = append(out, r)
		}
	}
	return string(out)
}
